//! Wire protocol for the `rdf serve` daemon.
//!
//! One request per line, one response per line — line-delimited JSON
//! over a unix or tcp socket (see `docs/PROTOCOL.md` for the normative
//! schema). This crate holds only the *protocol*: request/response
//! types, their JSON encoding/decoding (built on [`rdf_obs::json`], the
//! workspace's in-tree parser — the container is offline, no serde),
//! and the typed error envelope. The server loop, store cache and
//! worker gang live in `rdf-cli`; a future HTTP front end is a thin
//! adapter over these same types.
//!
//! Framing rules:
//!
//! * every request and every response is exactly one `\n`-terminated
//!   JSON object — no length prefixes, no continuation lines;
//! * a malformed line yields an `ok:false` response with kind
//!   [`ErrorKind::BadRequest`]; the connection stays open;
//! * requests on one connection are answered in order.

#![deny(missing_docs)]

use rdf_obs::json::{self, escape, Json};
use std::fmt;

/// Environment variable the server and client consult for a default
/// socket address: `RDF_SOCKET=/path/to.sock` (unix) or
/// `RDF_SOCKET=tcp:HOST:PORT`.
pub const SOCKET_ENV: &str = "RDF_SOCKET";

/// A client request, one per line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `import`: parse N-Triples into a store on the server's
    /// filesystem (mirrors `rdf import`).
    Import {
        /// Input N-Triples path.
        input: String,
        /// Output store path (`.rdfb`, or `.rdfm` with `shards`).
        output: String,
        /// Shard count for a sharded store; `None` for single-file.
        shards: Option<usize>,
        /// Section layout: `"varint"` or `"fixed"`; `None` for the
        /// server default (varint).
        layout: Option<String>,
        /// Per-request thread budget; `None` for the server default.
        threads: Option<usize>,
        /// Return the request's JSONL trace in the response.
        trace: bool,
    },
    /// `info`: header/section/shard summary, optionally with a
    /// bisimulation quotient summary (mirrors `rdf info`).
    Info {
        /// Store path.
        path: String,
        /// Compute the `--bisim` summary.
        bisim: bool,
        /// Use the shard-at-a-time streaming engine (requires `bisim`
        /// and a `.rdfm` manifest).
        streaming: bool,
        /// Per-request thread budget; `None` for the server default.
        threads: Option<usize>,
        /// Return the request's JSONL trace in the response.
        trace: bool,
    },
    /// `align`: the full alignment pipeline over two inputs (mirrors
    /// `rdf align`).
    Align {
        /// Source input path (store or N-Triples).
        source: String,
        /// Target input path (store or N-Triples).
        target: String,
        /// Method name: `trivial` | `deblank` | `hybrid` | `overlap`.
        method: String,
        /// Overlap threshold θ (overlap method only).
        theta: Option<f64>,
        /// Run refinement through the streaming engine.
        streaming: bool,
        /// Per-request thread budget; `None` for the server default.
        threads: Option<usize>,
        /// Return the request's JSONL trace in the response.
        trace: bool,
    },
    /// `stats`: server counters — uptime, requests served, cache
    /// occupancy/hits/evictions, worker-gang size.
    Stats,
}

impl Request {
    /// The operation name as it appears on the wire.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Import { .. } => "import",
            Request::Info { .. } => "info",
            Request::Align { .. } => "align",
            Request::Stats => "stats",
        }
    }

    /// Parse one request line. Any failure (bad JSON, missing or
    /// ill-typed field, unknown op) is a [`ProtocolError`] whose
    /// message names the offending part — the server echoes it back in
    /// a [`ErrorKind::BadRequest`] envelope.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let v = json::parse(line)
            .map_err(|e| ProtocolError::new(format!("bad JSON: {e}")))?;
        if v.as_obj().is_none() {
            return Err(ProtocolError::new("request must be a JSON object"));
        }
        let op = req_str(&v, "op")?;
        match op.as_str() {
            "import" => Ok(Request::Import {
                input: req_str(&v, "input")?,
                output: req_str(&v, "output")?,
                shards: opt_usize(&v, "shards")?,
                layout: opt_str(&v, "layout")?,
                threads: opt_usize(&v, "threads")?,
                trace: opt_bool(&v, "trace")?.unwrap_or(false),
            }),
            "info" => Ok(Request::Info {
                path: req_str(&v, "path")?,
                bisim: opt_bool(&v, "bisim")?.unwrap_or(false),
                streaming: opt_bool(&v, "streaming")?.unwrap_or(false),
                threads: opt_usize(&v, "threads")?,
                trace: opt_bool(&v, "trace")?.unwrap_or(false),
            }),
            "align" => Ok(Request::Align {
                source: req_str(&v, "source")?,
                target: req_str(&v, "target")?,
                method: opt_str(&v, "method")?
                    .unwrap_or_else(|| "hybrid".to_string()),
                theta: opt_f64(&v, "theta")?,
                streaming: opt_bool(&v, "streaming")?.unwrap_or(false),
                threads: opt_usize(&v, "threads")?,
                trace: opt_bool(&v, "trace")?.unwrap_or(false),
            }),
            "stats" => Ok(Request::Stats),
            other => Err(ProtocolError::new(format!(
                "unknown op {other:?} (expected import|info|align|stats)"
            ))),
        }
    }

    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = format!("{{\"op\":\"{}\"", self.op());
        match self {
            Request::Import {
                input,
                output,
                shards,
                layout,
                threads,
                trace,
            } => {
                push_str_field(&mut s, "input", input);
                push_str_field(&mut s, "output", output);
                push_opt_num(&mut s, "shards", *shards);
                if let Some(l) = layout {
                    push_str_field(&mut s, "layout", l);
                }
                push_opt_num(&mut s, "threads", *threads);
                push_bool_if(&mut s, "trace", *trace);
            }
            Request::Info {
                path,
                bisim,
                streaming,
                threads,
                trace,
            } => {
                push_str_field(&mut s, "path", path);
                push_bool_if(&mut s, "bisim", *bisim);
                push_bool_if(&mut s, "streaming", *streaming);
                push_opt_num(&mut s, "threads", *threads);
                push_bool_if(&mut s, "trace", *trace);
            }
            Request::Align {
                source,
                target,
                method,
                theta,
                streaming,
                threads,
                trace,
            } => {
                push_str_field(&mut s, "source", source);
                push_str_field(&mut s, "target", target);
                push_str_field(&mut s, "method", method);
                if let Some(t) = theta {
                    s.push_str(&format!(",\"theta\":{t}"));
                }
                push_bool_if(&mut s, "streaming", *streaming);
                push_opt_num(&mut s, "threads", *threads);
                push_bool_if(&mut s, "trace", *trace);
            }
            Request::Stats => {}
        }
        s.push('}');
        s
    }
}

/// What went wrong, machine-readably — the `error.kind` wire value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line itself was unusable (bad JSON, missing field,
    /// unknown op). The connection stays open.
    BadRequest,
    /// The operation ran and failed (missing file, corrupt store,
    /// unknown method, …) — same failures the one-shot CLI reports.
    Engine,
    /// The server itself misbehaved (a handler panicked).
    Internal,
}

impl ErrorKind {
    /// Wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Engine => "engine",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parse a wire string.
    pub fn from_str_wire(s: &str) -> Option<ErrorKind> {
        match s {
            "bad_request" => Some(ErrorKind::BadRequest),
            "engine" => Some(ErrorKind::Engine),
            "internal" => Some(ErrorKind::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One response line: success carrying the report text (byte-identical
/// to the one-shot CLI's stdout for the same operation), or a typed
/// error envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `{"ok":true,...}`.
    Ok {
        /// Echo of the request op.
        op: String,
        /// The report text — exactly what the one-shot CLI prints.
        report: String,
        /// Whether every store input was served from the cache.
        cached: bool,
        /// The request's JSONL trace, when `trace:true` was requested.
        trace: Option<String>,
    },
    /// `{"ok":false,"error":{...}}`.
    Err {
        /// Error category.
        kind: ErrorKind,
        /// Human-readable message (the CLI error text for
        /// [`ErrorKind::Engine`]).
        message: String,
    },
}

impl Response {
    /// A [`Response::Err`] from anything displayable.
    pub fn error(kind: ErrorKind, message: impl fmt::Display) -> Response {
        Response::Err {
            kind,
            message: message.to_string(),
        }
    }

    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Ok {
                op,
                report,
                cached,
                trace,
            } => {
                let mut s = format!(
                    "{{\"ok\":true,\"op\":\"{}\",\"cached\":{cached},\
                     \"report\":\"{}\"",
                    escape(op),
                    escape(report),
                );
                if let Some(t) = trace {
                    s.push_str(&format!(",\"trace\":\"{}\"", escape(t)));
                }
                s.push('}');
                s
            }
            Response::Err { kind, message } => format!(
                "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\
                 \"message\":\"{}\"}}}}",
                kind.as_str(),
                escape(message),
            ),
        }
    }

    /// Parse one response line (the client half).
    pub fn parse(line: &str) -> Result<Response, ProtocolError> {
        let v = json::parse(line)
            .map_err(|e| ProtocolError::new(format!("bad JSON: {e}")))?;
        match v.get("ok") {
            Some(Json::Bool(true)) => Ok(Response::Ok {
                op: req_str(&v, "op")?,
                report: req_str(&v, "report")?,
                cached: opt_bool(&v, "cached")?.unwrap_or(false),
                trace: opt_str(&v, "trace")?,
            }),
            Some(Json::Bool(false)) => {
                let err = v.get("error").ok_or_else(|| {
                    ProtocolError::new("missing \"error\" envelope")
                })?;
                let kind = err
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(ErrorKind::from_str_wire)
                    .ok_or_else(|| {
                        ProtocolError::new("bad \"error.kind\"")
                    })?;
                let message = err
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                Ok(Response::Err { kind, message })
            }
            _ => Err(ProtocolError::new("missing boolean \"ok\" field")),
        }
    }
}

/// A request or response line that does not follow the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    msg: String,
}

impl ProtocolError {
    fn new(msg: impl Into<String>) -> ProtocolError {
        ProtocolError { msg: msg.into() }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------- helpers

fn req_str(v: &Json, key: &str) -> Result<String, ProtocolError> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(ProtocolError::new(format!(
            "field {key:?} must be a string"
        ))),
        None => {
            Err(ProtocolError::new(format!("missing field {key:?}")))
        }
    }
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtocolError::new(format!(
            "field {key:?} must be a string"
        ))),
    }
}

fn opt_bool(v: &Json, key: &str) -> Result<Option<bool>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(ProtocolError::new(format!(
            "field {key:?} must be a boolean"
        ))),
    }
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => match n.as_u64() {
            Some(u) => Ok(Some(u as usize)),
            None => Err(ProtocolError::new(format!(
                "field {key:?} must be a non-negative integer"
            ))),
        },
    }
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => match n.as_f64() {
            Some(f) => Ok(Some(f)),
            None => Err(ProtocolError::new(format!(
                "field {key:?} must be a number"
            ))),
        },
    }
}

fn push_str_field(s: &mut String, key: &str, val: &str) {
    s.push_str(&format!(",\"{key}\":\"{}\"", escape(val)));
}

fn push_opt_num(s: &mut String, key: &str, val: Option<usize>) {
    if let Some(n) = val {
        s.push_str(&format!(",\"{key}\":{n}"));
    }
}

fn push_bool_if(s: &mut String, key: &str, val: bool) {
    if val {
        s.push_str(&format!(",\"{key}\":true"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_ops() {
        let reqs = vec![
            Request::Import {
                input: "a.nt".into(),
                output: "a.rdfb".into(),
                shards: Some(4),
                layout: Some("fixed".into()),
                threads: Some(2),
                trace: true,
            },
            Request::Info {
                path: "a.rdfb".into(),
                bisim: true,
                streaming: false,
                threads: None,
                trace: false,
            },
            Request::Align {
                source: "v1.rdfb".into(),
                target: "v2.rdfb".into(),
                method: "overlap".into(),
                theta: Some(0.25),
                streaming: true,
                threads: Some(8),
                trace: true,
            },
            Request::Stats,
        ];
        for req in reqs {
            let line = req.to_line();
            let parsed = Request::parse(&line).unwrap();
            assert_eq!(parsed, req, "through the wire: {line}");
        }
    }

    #[test]
    fn align_defaults_method_to_hybrid() {
        let r = Request::parse(
            "{\"op\":\"align\",\"source\":\"a\",\"target\":\"b\"}",
        )
        .unwrap();
        match r {
            Request::Align {
                method,
                theta,
                streaming,
                threads,
                trace,
                ..
            } => {
                assert_eq!(method, "hybrid");
                assert_eq!(theta, None);
                assert!(!streaming);
                assert_eq!(threads, None);
                assert!(!trace);
            }
            other => panic!("expected align, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            ("42", "must be a JSON object"),
            ("{}", "missing field \"op\""),
            ("{\"op\":\"fly\"}", "unknown op \"fly\""),
            ("{\"op\":\"info\"}", "missing field \"path\""),
            ("{\"op\":\"info\",\"path\":7}", "must be a string"),
            (
                "{\"op\":\"info\",\"path\":\"x\",\"threads\":-1}",
                "non-negative integer",
            ),
            (
                "{\"op\":\"info\",\"path\":\"x\",\"trace\":\"yes\"}",
                "must be a boolean",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{line}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn response_roundtrip_ok_and_error() {
        let ok = Response::Ok {
            op: "align".into(),
            report: "alignment report\n  line \"quoted\"\n".into(),
            cached: true,
            trace: Some("{\"ev\":\"span\"}\n".into()),
        };
        let parsed = Response::parse(&ok.to_line()).unwrap();
        assert_eq!(parsed, ok);

        let err =
            Response::error(ErrorKind::Engine, "store.rdfb: not found");
        let parsed = Response::parse(&err.to_line()).unwrap();
        assert_eq!(parsed, err);
    }

    #[test]
    fn error_kinds_roundtrip_the_wire() {
        for kind in
            [ErrorKind::BadRequest, ErrorKind::Engine, ErrorKind::Internal]
        {
            assert_eq!(ErrorKind::from_str_wire(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::from_str_wire("nope"), None);
    }

    #[test]
    fn report_text_survives_the_wire_byte_for_byte() {
        // Control characters, quotes, backslashes, non-ASCII — the
        // byte-identity contract rides on this.
        let report = "tab\there\nquote\"back\\slash\nμ-bytes\u{1}\n";
        let resp = Response::Ok {
            op: "info".into(),
            report: report.into(),
            cached: false,
            trace: None,
        };
        match Response::parse(&resp.to_line()).unwrap() {
            Response::Ok { report: r, .. } => assert_eq!(r, report),
            other => panic!("expected ok, got {other:?}"),
        }
    }
}
