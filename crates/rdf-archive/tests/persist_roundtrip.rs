//! Archive persistence round-trips through the `.rdfb` container:
//! `load(save(archive)) == archive` under the new `PartialEq`, with the
//! vocabulary's label ids preserved verbatim (label histories store raw
//! ids, so a remap would silently rewrite history).

use rdf_align::methods::hybrid_partition;
use rdf_archive::{load_archive, save_archive, Archive};
use rdf_model::{CombinedGraph, RdfGraph, RdfGraphBuilder, Vocab};
use rdf_store::StoreError;

/// Three versions with a URI rename and a dropped triple — enough to
/// exercise multi-range intervals and label histories.
fn three_versions() -> (Vocab, Vec<RdfGraph>) {
    let mut vocab = Vocab::new();
    let v1 = {
        let mut b = RdfGraphBuilder::new(&mut vocab);
        b.uul("old:x", "p", "stable");
        b.uul("old:x", "q", "extra");
        b.uub("old:x", "addr", "b1");
        b.bul("b1", "zip", "EH8");
        b.finish()
    };
    let v2 = {
        let mut b = RdfGraphBuilder::new(&mut vocab);
        b.uul("new:x", "p", "stable");
        b.uul("new:x", "q", "extra");
        b.uub("new:x", "addr", "b9");
        b.bul("b9", "zip", "EH8");
        b.finish()
    };
    let v3 = {
        let mut b = RdfGraphBuilder::new(&mut vocab);
        b.uul("new:x", "p", "stable");
        b.finish()
    };
    (vocab, vec![v1, v2, v3])
}

fn build_archive(vocab: &Vocab, versions: &[RdfGraph]) -> Archive {
    let mut archive = Archive::new();
    archive.push_first(versions[0].graph());
    for w in versions.windows(2) {
        let combined = CombinedGraph::union(vocab, &w[0], &w[1]);
        let partition = hybrid_partition(&combined).partition;
        archive.push_aligned(w[1].graph(), &combined, &partition);
    }
    archive
}

fn save_to_bytes(vocab: &Vocab, archive: &Archive) -> Vec<u8> {
    let mut bytes = Vec::new();
    save_archive(&mut bytes, vocab, archive).unwrap();
    bytes
}

#[test]
fn archive_round_trips_exactly() {
    let (vocab, versions) = three_versions();
    let archive = build_archive(&vocab, &versions);
    let bytes = save_to_bytes(&vocab, &archive);

    let (vocab2, archive2) = load_archive(&bytes).unwrap();
    assert_eq!(archive, archive2);

    // The dictionary must round-trip id-for-id.
    assert_eq!(vocab2.len(), vocab.len());
    for i in 0..vocab.len() {
        let id = rdf_model::LabelId(i as u32);
        assert_eq!(vocab2.kind(id), vocab.kind(id));
        assert_eq!(vocab2.text(id), vocab.text(id));
    }

    // Reconstruction still works post-load: same per-version triple sets
    // and space accounting.
    for v in 0..versions.len() as u32 {
        assert_eq!(archive2.version_triples(v), archive.version_triples(v));
    }
    assert_eq!(archive2.space_stats(), archive.space_stats());
}

#[test]
fn empty_archive_round_trips() {
    let vocab = Vocab::new();
    let archive = Archive::new();
    let bytes = save_to_bytes(&vocab, &archive);
    let (_, archive2) = load_archive(&bytes).unwrap();
    assert_eq!(archive, archive2);
    assert_eq!(archive2.num_versions(), 0);
}

#[test]
fn saving_is_deterministic() {
    let (vocab, versions) = three_versions();
    let archive = build_archive(&vocab, &versions);
    assert_eq!(
        save_to_bytes(&vocab, &archive),
        save_to_bytes(&vocab, &archive)
    );
}

#[test]
fn graph_store_rejected_by_archive_loader() {
    let (vocab, versions) = three_versions();
    let bytes = rdf_store::graph_to_bytes(&vocab, &versions[0]).unwrap();
    match load_archive(&bytes) {
        Err(StoreError::WrongContentKind { found, expected }) => {
            assert_eq!(found, rdf_store::KIND_GRAPH);
            assert_eq!(expected, rdf_store::KIND_ARCHIVE);
        }
        other => panic!("expected WrongContentKind, got {other:?}"),
    }
}

#[test]
fn corrupt_archive_fails_loudly() {
    let (vocab, versions) = three_versions();
    let archive = build_archive(&vocab, &versions);
    let bytes = save_to_bytes(&vocab, &archive);
    // Truncations at arbitrary points are typed errors, never panics.
    for cut in (0..bytes.len()).step_by(13) {
        assert!(load_archive(&bytes[..cut]).is_err(), "cut at {cut}");
    }
    // A flipped payload byte trips a section checksum.
    let mut corrupt = bytes.clone();
    let target = rdf_store::container::HEADER_LEN
        + rdf_store::container::SECTION_OVERHEAD
        + 2;
    corrupt[target] ^= 0x20;
    assert!(matches!(
        load_archive(&corrupt),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn archive_equality_is_meaningful() {
    let (vocab, versions) = three_versions();
    let a = build_archive(&vocab, &versions);
    let b = build_archive(&vocab, &versions);
    assert_eq!(a, b);
    // Dropping the last version changes state.
    let c = build_archive(&vocab, &versions[..2]);
    assert_ne!(a, c);
}
