//! Version-interval sets: which versions a triple (or entity) was
//! present in, stored as sorted half-open ranges.

/// A sorted set of disjoint half-open version ranges `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    ranges: Vec<(u32, u32)>,
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set containing a single version.
    pub fn singleton(v: u32) -> Self {
        IntervalSet {
            ranges: vec![(v, v + 1)],
        }
    }

    /// Record presence at version `v`. Versions must be pushed in
    /// non-decreasing order (archives are built version by version).
    pub fn push(&mut self, v: u32) {
        if let Some(last) = self.ranges.last_mut() {
            assert!(v >= last.1 - 1, "versions must be pushed in order");
            if v < last.1 {
                return; // already present
            }
            if v == last.1 {
                last.1 = v + 1;
                return;
            }
        }
        self.ranges.push((v, v + 1));
    }

    /// Whether version `v` is in the set.
    pub fn contains(&self, v: u32) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if v < s {
                    std::cmp::Ordering::Greater
                } else if v >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Number of stored ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Number of versions covered.
    pub fn version_count(&self) -> usize {
        self.ranges.iter().map(|&(s, e)| (e - s) as usize).sum()
    }

    /// The ranges.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Rebuild a set from stored ranges (deserialisation path). Ranges
    /// must be non-empty, ascending, and non-adjacent — the canonical
    /// form [`IntervalSet::push`] maintains — so equality with a freshly
    /// built set is structural.
    pub fn from_ranges(ranges: Vec<(u32, u32)>) -> Result<Self, &'static str> {
        let mut prev_end: Option<u32> = None;
        for &(s, e) in &ranges {
            if s >= e {
                return Err("empty interval range");
            }
            if let Some(pe) = prev_end {
                if s <= pe {
                    return Err("interval ranges must be ascending and \
                                non-adjacent");
                }
            }
            prev_end = Some(e);
        }
        Ok(IntervalSet { ranges })
    }

    /// Iterate the individual versions.
    pub fn versions(&self) -> impl Iterator<Item = u32> + '_ {
        self.ranges.iter().flat_map(|&(s, e)| s..e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_pushes_merge() {
        let mut s = IntervalSet::new();
        for v in 0..5 {
            s.push(v);
        }
        assert_eq!(s.ranges(), &[(0, 5)]);
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.version_count(), 5);
    }

    #[test]
    fn gaps_create_ranges() {
        let mut s = IntervalSet::new();
        s.push(0);
        s.push(1);
        s.push(4);
        s.push(5);
        assert_eq!(s.ranges(), &[(0, 2), (4, 6)]);
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert!(!s.contains(3));
        assert!(s.contains(4));
        assert!(!s.contains(6));
        assert_eq!(s.version_count(), 4);
    }

    #[test]
    fn duplicate_push_is_idempotent() {
        let mut s = IntervalSet::new();
        s.push(3);
        s.push(3);
        assert_eq!(s.ranges(), &[(3, 4)]);
    }

    #[test]
    fn versions_iterator() {
        let mut s = IntervalSet::new();
        s.push(1);
        s.push(3);
        let vs: Vec<u32> = s.versions().collect();
        assert_eq!(vs, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "versions must be pushed in order")]
    fn out_of_order_push_panics() {
        let mut s = IntervalSet::new();
        s.push(5);
        s.push(2);
    }
}
