//! The multi-version archive.
//!
//! §6 of the paper asks: *"can the (constructed) alignments be used to
//! construct compact representations of all versions of an RDF database?
//! One way of approaching this would be to decorate triples with
//! intervals that represent versions where the triple was present. Our
//! preliminary observations suggest that triples tend to enter and leave
//! with their subject. Consequently, moving the interval information
//! where possible to the subject nodes could offer further improvements
//! on space requirements."*
//!
//! This module implements exactly that: versions are pushed one by one;
//! the alignment between consecutive versions (any partition method)
//! carries *canonical entity identity* across versions; triples are
//! stored once with a version-interval set; and the space report counts
//! how many triples' intervals coincide with their subject's lifespan —
//! the ones whose intervals can be elided under subject factoring.

use crate::interval::IntervalSet;
use rdf_align::partition::{Partition, SideCounts};
use rdf_model::{
    CombinedGraph, FxHashMap, LabelId, NodeId, TripleGraph,
};

/// Canonical entity identifier, stable across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonId(pub u32);

/// Space accounting for the three storage schemes of §6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Σ over versions of triple counts — storing every version whole.
    pub naive_triples: usize,
    /// Distinct canonical triples — stored once each.
    pub distinct_triples: usize,
    /// Total interval ranges attached to triples.
    pub triple_intervals: usize,
    /// Triples whose interval set equals their subject's lifespan — the
    /// intervals that subject factoring elides.
    pub subject_covered: usize,
    /// Interval ranges that remain after subject factoring
    /// (triple intervals of non-covered triples + one lifespan per
    /// subject).
    pub factored_intervals: usize,
}

impl SpaceStats {
    /// Fraction of triples that "enter and leave with their subject".
    pub fn subject_covered_fraction(&self) -> f64 {
        if self.distinct_triples == 0 {
            0.0
        } else {
            self.subject_covered as f64 / self.distinct_triples as f64
        }
    }
}

/// A compact archive of all versions of an evolving RDF graph.
///
/// `PartialEq` compares full archive state (versions, lifespans, label
/// histories, triples, last mapping) — the identity that persistence
/// round-trips must preserve.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Archive {
    pub(crate) num_versions: u32,
    pub(crate) next_canon: u32,
    /// Canonical triple → versions where present.
    pub(crate) triples: FxHashMap<(CanonId, CanonId, CanonId), IntervalSet>,
    /// Entity lifespans.
    pub(crate) lifespans: FxHashMap<CanonId, IntervalSet>,
    /// Label history per entity: change points `(version, label)`,
    /// ascending by version (renamed URIs share a canonical entity but
    /// change label).
    pub(crate) labels: FxHashMap<CanonId, Vec<(u32, LabelId)>>,
    /// Node → canon mapping of the most recently pushed version.
    pub(crate) last_mapping: Vec<CanonId>,
}

impl Archive {
    /// Empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of versions pushed.
    pub fn num_versions(&self) -> usize {
        self.num_versions as usize
    }

    /// Push the first version (no alignment needed).
    pub fn push_first(&mut self, g: &TripleGraph) -> Vec<CanonId> {
        assert_eq!(self.num_versions, 0, "push_first on non-empty archive");
        let mapping: Vec<CanonId> =
            g.nodes().map(|_| self.fresh_canon()).collect();
        self.ingest(g, &mapping);
        self.last_mapping = mapping.clone();
        self.num_versions = 1;
        mapping
    }

    /// Push the next version given the alignment between the previous
    /// version (source side) and this one (target side). Only classes
    /// with exactly one node on each side carry identity; everything
    /// else gets a fresh canonical id.
    pub fn push_aligned(
        &mut self,
        g: &TripleGraph,
        combined: &CombinedGraph,
        partition: &Partition,
    ) -> Vec<CanonId> {
        assert!(self.num_versions > 0, "push_first before push_aligned");
        assert_eq!(combined.source_len(), self.last_mapping.len());
        assert_eq!(combined.target_len(), g.node_count());

        let counts = SideCounts::new(partition, combined);
        let k = partition.num_colors() as usize;
        // Representative source node per 1-1 class.
        let mut source_rep: Vec<Option<NodeId>> = vec![None; k];
        for n in combined.source_nodes() {
            let c = partition.color(n).index();
            if counts.source[c] == 1 && counts.target[c] == 1 {
                source_rep[c] = Some(n);
            }
        }
        let mut mapping = Vec::with_capacity(g.node_count());
        for m_local in g.nodes() {
            let m = combined.from_target(m_local);
            let c = partition.color(m).index();
            let canon = match source_rep[c] {
                Some(prev) if counts.target[c] == 1 => {
                    self.last_mapping[prev.index()]
                }
                _ => self.fresh_canon(),
            };
            mapping.push(canon);
        }
        self.ingest(g, &mapping);
        self.last_mapping = mapping.clone();
        self.num_versions += 1;
        mapping
    }

    fn fresh_canon(&mut self) -> CanonId {
        let id = CanonId(self.next_canon);
        self.next_canon += 1;
        id
    }

    fn ingest(&mut self, g: &TripleGraph, mapping: &[CanonId]) {
        let v = self.num_versions;
        for (n, &canon) in g.nodes().zip(mapping) {
            self.lifespans.entry(canon).or_default().push(v);
            let history = self.labels.entry(canon).or_default();
            if history.last().map(|&(_, l)| l) != Some(g.label(n)) {
                history.push((v, g.label(n)));
            }
        }
        for t in g.triples() {
            let key = (
                mapping[t.s.index()],
                mapping[t.p.index()],
                mapping[t.o.index()],
            );
            self.triples.entry(key).or_default().push(v);
        }
    }

    /// Reconstruct the canonical triples of a version.
    pub fn version_triples(&self, v: u32) -> Vec<(CanonId, CanonId, CanonId)> {
        let mut out: Vec<_> = self
            .triples
            .iter()
            .filter(|(_, iv)| iv.contains(v))
            .map(|(&t, _)| t)
            .collect();
        out.sort_unstable();
        out
    }

    /// The label an entity carried at a version, if alive then.
    pub fn label_at(&self, canon: CanonId, v: u32) -> Option<LabelId> {
        if !self.lifespans.get(&canon)?.contains(v) {
            return None;
        }
        let history = self.labels.get(&canon)?;
        history
            .iter()
            .take_while(|&&(at, _)| at <= v)
            .last()
            .map(|&(_, l)| l)
    }

    /// An entity's lifespan.
    pub fn lifespan(&self, canon: CanonId) -> Option<&IntervalSet> {
        self.lifespans.get(&canon)
    }

    /// Number of distinct canonical entities.
    pub fn entity_count(&self) -> usize {
        self.lifespans.len()
    }

    /// Space accounting across the three schemes of §6.
    pub fn space_stats(&self) -> SpaceStats {
        let mut stats = SpaceStats {
            distinct_triples: self.triples.len(),
            ..Default::default()
        };
        for iv in self.triples.values() {
            stats.naive_triples += iv.version_count();
            stats.triple_intervals += iv.range_count();
        }
        let mut residual = 0usize;
        for ((s, _, _), iv) in &self.triples {
            let subject_life = &self.lifespans[s];
            if iv == subject_life {
                stats.subject_covered += 1;
            } else {
                residual += iv.range_count();
            }
        }
        // Subjects still pay one lifespan each.
        let subjects: rdf_model::FxHashSet<CanonId> =
            self.triples.keys().map(|&(s, _, _)| s).collect();
        let subject_ranges: usize = subjects
            .iter()
            .map(|s| self.lifespans[s].range_count())
            .sum();
        stats.factored_intervals = residual + subject_ranges;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_align::methods::hybrid_partition;
    use rdf_model::{RdfGraphBuilder, Vocab};

    /// Three versions: v2 renames a URI (content unchanged), v3 drops a
    /// triple.
    fn three_versions() -> (Vocab, Vec<rdf_model::RdfGraph>) {
        let mut vocab = Vocab::new();
        let v1 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("old:x", "p", "stable");
            b.uul("old:x", "q", "extra");
            b.finish()
        };
        let v2 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("new:x", "p", "stable");
            b.uul("new:x", "q", "extra");
            b.finish()
        };
        let v3 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("new:x", "p", "stable");
            b.finish()
        };
        (vocab, vec![v1, v2, v3])
    }

    fn build(vocab: &Vocab, versions: &[rdf_model::RdfGraph]) -> Archive {
        let mut archive = Archive::new();
        archive.push_first(versions[0].graph());
        for w in versions.windows(2) {
            let combined = CombinedGraph::union(vocab, &w[0], &w[1]);
            let partition = hybrid_partition(&combined).partition;
            archive.push_aligned(w[1].graph(), &combined, &partition);
        }
        archive
    }

    #[test]
    fn reconstruction_round_trips() {
        let (vocab, versions) = three_versions();
        let archive = build(&vocab, &versions);
        assert_eq!(archive.num_versions(), 3);
        for (v, graph) in versions.iter().enumerate() {
            assert_eq!(
                archive.version_triples(v as u32).len(),
                graph.triple_count(),
                "version {v}"
            );
        }
    }

    #[test]
    fn renamed_entity_keeps_canonical_identity() {
        let (vocab, versions) = three_versions();
        let archive = build(&vocab, &versions);
        // The renamed x contributes ONE canonical subject; its (x, p,
        // "stable") triple is stored once with interval [0, 3).
        let t0 = archive.version_triples(0);
        let t2 = archive.version_triples(2);
        // v3's only triple also exists in v1 under the same canonical ids.
        assert!(t0.contains(&t2[0]));
        let stable_triple = t2[0];
        assert_eq!(
            archive.triples[&stable_triple].ranges(),
            &[(0, 3)],
            "one contiguous interval across the rename"
        );
    }

    #[test]
    fn label_history_tracks_rename() {
        let (vocab, versions) = three_versions();
        let archive = build(&vocab, &versions);
        let x_canon = archive.version_triples(0)[0].0;
        let l0 = archive.label_at(x_canon, 0).unwrap();
        let l1 = archive.label_at(x_canon, 1).unwrap();
        let l2 = archive.label_at(x_canon, 2).unwrap();
        assert_eq!(vocab.text(l0), "old:x");
        assert_eq!(vocab.text(l1), "new:x");
        assert_eq!(l1, l2);
        // Dead entities have no label.
        assert_eq!(archive.label_at(CanonId(99_999), 0), None);
    }

    #[test]
    fn space_stats_reflect_subject_factoring() {
        let (vocab, versions) = three_versions();
        let archive = build(&vocab, &versions);
        let s = archive.space_stats();
        // naive = 2 + 2 + 1 = 5 triples; distinct = 2.
        assert_eq!(s.naive_triples, 5);
        assert_eq!(s.distinct_triples, 2);
        // (x,p,stable) spans [0,3) = x's lifespan -> covered;
        // (x,q,extra) spans [0,2) != lifespan -> not covered.
        assert_eq!(s.subject_covered, 1);
        assert!(s.subject_covered_fraction() > 0.49);
        // factored = 1 residual (q-triple) + 1 subject lifespan = 2.
        assert_eq!(s.factored_intervals, 2);
        assert!(s.factored_intervals <= s.triple_intervals + 1);
    }

    #[test]
    fn unaligned_nodes_get_fresh_identity() {
        let mut vocab = Vocab::new();
        let v1 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("a:1", "p", "one");
            b.finish()
        };
        let v2 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("b:2", "p", "two");
            b.finish()
        };
        let mut archive = Archive::new();
        archive.push_first(v1.graph());
        let combined = CombinedGraph::union(&vocab, &v1, &v2);
        let partition = hybrid_partition(&combined).partition;
        archive.push_aligned(v2.graph(), &combined, &partition);
        // Subjects differ in content: distinct canonical entities; the
        // shared predicate p is canonical across both versions.
        let s = archive.space_stats();
        assert_eq!(s.distinct_triples, 2);
        assert_eq!(s.naive_triples, 2);
    }

    #[test]
    fn entity_count_and_lifespans() {
        let (vocab, versions) = three_versions();
        let archive = build(&vocab, &versions);
        // Entities: x, p, q, "stable", "extra" = 5 canonical ids.
        assert_eq!(archive.entity_count(), 5);
        let x = archive.version_triples(0)[0].0;
        assert_eq!(archive.lifespan(x).unwrap().ranges(), &[(0, 3)]);
    }
}
