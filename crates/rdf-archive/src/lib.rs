//! Compact multi-version RDF archives built on alignments.
//!
//! Implements the research direction sketched in §6 of *RDF Graph
//! Alignment with Bisimulation*: store all versions of an evolving RDF
//! graph once, with triples decorated by version intervals, using the
//! alignment between consecutive versions to carry entity identity
//! (including across URI renames and blank-node relabelings); then
//! factor intervals into subject lifespans where "triples enter and
//! leave with their subject".
//!
//! ```
//! use rdf_model::{Vocab, RdfGraphBuilder, CombinedGraph};
//! use rdf_align::methods::hybrid_partition;
//! use rdf_archive::Archive;
//!
//! let mut vocab = Vocab::new();
//! let v1 = { let mut b = RdfGraphBuilder::new(&mut vocab);
//!            b.uul("old:x", "p", "v"); b.finish() };
//! let v2 = { let mut b = RdfGraphBuilder::new(&mut vocab);
//!            b.uul("new:x", "p", "v"); b.finish() };
//!
//! let mut archive = Archive::new();
//! archive.push_first(v1.graph());
//! let combined = CombinedGraph::union(&vocab, &v1, &v2);
//! let partition = hybrid_partition(&combined).partition;
//! archive.push_aligned(v2.graph(), &combined, &partition);
//!
//! // One triple stored once, spanning both versions despite the rename.
//! assert_eq!(archive.space_stats().distinct_triples, 1);
//! assert_eq!(archive.space_stats().naive_triples, 2);
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod interval;
pub mod persist;

pub use archive::{Archive, CanonId, SpaceStats};
pub use interval::IntervalSet;
pub use persist::{
    load_archive, load_archive_file, save_archive, save_archive_file,
};
