//! Archive persistence through the `.rdfb` container (content kind
//! [`KIND_ARCHIVE`]).
//!
//! The archive's state references a [`Vocab`] by label id, so the full
//! dictionary travels with it — ids must stay stable across a round
//! trip because label *histories* store raw `LabelId`s. Sections:
//!
//! | tag    | content |
//! |--------|---------|
//! | `DICT` | the complete vocabulary (ids preserved, blank at 0) |
//! | `META` | `num_versions`, `next_canon` |
//! | `LIFE` | entity lifespans: delta canon id + interval ranges |
//! | `LABL` | label histories: delta canon id + `(version, label)` list |
//! | `TRPL` | canonical triples (delta-encoded) + interval ranges |
//! | `LMAP` | node → canon mapping of the last pushed version |

use crate::archive::{Archive, CanonId};
use crate::interval::IntervalSet;
use rdf_model::{FxHashMap, LabelId, Vocab};
use rdf_store::container::{Container, ContainerWriter, KIND_ARCHIVE};
use rdf_store::dict::{read_dict, write_dict};
use rdf_store::varint::{read_varint_u32, read_varint_usize, write_varint};
use rdf_store::StoreError;
use std::io::Write;
use std::path::Path;

const TAG_DICT: [u8; 4] = *b"DICT";
const TAG_META: [u8; 4] = *b"META";
const TAG_LIFE: [u8; 4] = *b"LIFE";
const TAG_LABL: [u8; 4] = *b"LABL";
const TAG_TRPL: [u8; 4] = *b"TRPL";
const TAG_LMAP: [u8; 4] = *b"LMAP";

fn write_intervals(out: &mut Vec<u8>, iv: &IntervalSet) {
    write_varint(out, iv.range_count() as u64);
    let mut prev = 0u32;
    for &(s, e) in iv.ranges() {
        write_varint(out, u64::from(s - prev));
        write_varint(out, u64::from(e - s));
        prev = e;
    }
}

fn read_intervals(
    buf: &[u8],
    pos: &mut usize,
) -> Result<IntervalSet, StoreError> {
    let n = read_varint_usize(buf, pos)?;
    // The count is untrusted; each range needs >= 2 payload bytes.
    let mut ranges = Vec::with_capacity(n.min((buf.len() - *pos) / 2 + 1));
    let mut prev = 0u32;
    for _ in 0..n {
        let ds = read_varint_u32(buf, pos)?;
        let len = read_varint_u32(buf, pos)?;
        let s = prev
            .checked_add(ds)
            .ok_or_else(|| StoreError::Corrupt("interval overflow".into()))?;
        let e = s
            .checked_add(len)
            .ok_or_else(|| StoreError::Corrupt("interval overflow".into()))?;
        ranges.push((s, e));
        prev = e;
    }
    IntervalSet::from_ranges(ranges)
        .map_err(|e| StoreError::Corrupt(e.into()))
}

/// Serialise an archive (with the vocabulary its labels reference) to a
/// container byte stream.
pub fn save_archive<W: Write>(
    mut out: W,
    vocab: &Vocab,
    archive: &Archive,
) -> Result<(), StoreError> {
    // DICT — the whole vocabulary, ids preserved verbatim.
    let mut dict = Vec::new();
    write_dict(
        &mut dict,
        vocab,
        (1..vocab.len()).map(|i| LabelId(i as u32)),
    )?;

    let mut meta = Vec::new();
    write_varint(&mut meta, u64::from(archive.num_versions));
    write_varint(&mut meta, u64::from(archive.next_canon));

    // LIFE — sorted by canon id, delta-encoded.
    let mut life_entries: Vec<(&CanonId, &IntervalSet)> =
        archive.lifespans.iter().collect();
    life_entries.sort_unstable_by_key(|&(c, _)| c);
    let mut life = Vec::new();
    write_varint(&mut life, life_entries.len() as u64);
    let mut prev = 0u32;
    for (c, iv) in life_entries {
        write_varint(&mut life, u64::from(c.0 - prev));
        prev = c.0;
        write_intervals(&mut life, iv);
    }

    // LABL — label histories, sorted by canon id.
    let mut labl_entries: Vec<(&CanonId, &Vec<(u32, LabelId)>)> =
        archive.labels.iter().collect();
    labl_entries.sort_unstable_by_key(|&(c, _)| c);
    let mut labl = Vec::new();
    write_varint(&mut labl, labl_entries.len() as u64);
    let mut prev = 0u32;
    for (c, history) in labl_entries {
        write_varint(&mut labl, u64::from(c.0 - prev));
        prev = c.0;
        write_varint(&mut labl, history.len() as u64);
        for &(v, l) in history {
            write_varint(&mut labl, u64::from(v));
            write_varint(&mut labl, u64::from(l.0));
        }
    }

    // TRPL — canonical triples sorted by (s, p, o), delta on s.
    let mut triples: Vec<(&(CanonId, CanonId, CanonId), &IntervalSet)> =
        archive.triples.iter().collect();
    triples.sort_unstable_by_key(|&(t, _)| t);
    let mut trpl = Vec::new();
    write_varint(&mut trpl, triples.len() as u64);
    let mut prev_s = 0u32;
    for (&(s, p, o), iv) in triples {
        write_varint(&mut trpl, u64::from(s.0 - prev_s));
        prev_s = s.0;
        write_varint(&mut trpl, u64::from(p.0));
        write_varint(&mut trpl, u64::from(o.0));
        write_intervals(&mut trpl, iv);
    }

    let mut lmap = Vec::new();
    write_varint(&mut lmap, archive.last_mapping.len() as u64);
    for c in &archive.last_mapping {
        write_varint(&mut lmap, u64::from(c.0));
    }

    let counts = [
        u64::from(archive.num_versions),
        archive.lifespans.len() as u64,
        archive.triples.len() as u64,
    ];
    let mut w = ContainerWriter::new();
    w.section(TAG_DICT, dict)
        .section(TAG_META, meta)
        .section(TAG_LIFE, life)
        .section(TAG_LABL, labl)
        .section(TAG_TRPL, trpl)
        .section(TAG_LMAP, lmap);
    w.finish(&mut out, KIND_ARCHIVE, counts)?;
    out.flush()?;
    Ok(())
}

/// Reconstruct an archive (and the vocabulary it references) from
/// container bytes.
pub fn load_archive(bytes: &[u8]) -> Result<(Vocab, Archive), StoreError> {
    let c = Container::parse(bytes)?;
    let header = *c.header();
    if header.kind != KIND_ARCHIVE {
        return Err(StoreError::WrongContentKind {
            found: header.kind,
            expected: KIND_ARCHIVE,
        });
    }

    // DICT.
    let dict = c.section(TAG_DICT)?;
    let mut pos = 0usize;
    let vocab = read_dict(dict, &mut pos)?;

    // META.
    let meta = c.section(TAG_META)?;
    let mut pos = 0usize;
    let num_versions = read_varint_u32(meta, &mut pos)?;
    let next_canon = read_varint_u32(meta, &mut pos)?;

    // LIFE.
    let life = c.section(TAG_LIFE)?;
    let mut pos = 0usize;
    let n = read_varint_usize(life, &mut pos)?;
    let mut lifespans: FxHashMap<CanonId, IntervalSet> = FxHashMap::default();
    let mut prev = 0u32;
    for i in 0..n {
        let delta = read_varint_u32(life, &mut pos)?;
        if i > 0 && delta == 0 {
            return Err(StoreError::Corrupt("duplicate lifespan entity".into()));
        }
        prev = prev.checked_add(delta).ok_or_else(|| {
            StoreError::Corrupt("canon id overflow".into())
        })?;
        lifespans.insert(CanonId(prev), read_intervals(life, &mut pos)?);
    }

    // LABL.
    let labl = c.section(TAG_LABL)?;
    let mut pos = 0usize;
    let n = read_varint_usize(labl, &mut pos)?;
    let mut labels: FxHashMap<CanonId, Vec<(u32, LabelId)>> =
        FxHashMap::default();
    let mut prev = 0u32;
    for i in 0..n {
        let delta = read_varint_u32(labl, &mut pos)?;
        if i > 0 && delta == 0 {
            return Err(StoreError::Corrupt(
                "duplicate label-history entity".into(),
            ));
        }
        prev = prev.checked_add(delta).ok_or_else(|| {
            StoreError::Corrupt("canon id overflow".into())
        })?;
        let len = read_varint_usize(labl, &mut pos)?;
        let mut history =
            Vec::with_capacity(len.min((labl.len() - pos) / 2 + 1));
        for _ in 0..len {
            let v = read_varint_u32(labl, &mut pos)?;
            let l = read_varint_u32(labl, &mut pos)?;
            if l as usize >= vocab.len() {
                return Err(StoreError::Corrupt(format!(
                    "label id {l} beyond dictionary of {}",
                    vocab.len()
                )));
            }
            history.push((v, LabelId(l)));
        }
        labels.insert(CanonId(prev), history);
    }

    // TRPL.
    let trpl = c.section(TAG_TRPL)?;
    let mut pos = 0usize;
    let n = read_varint_usize(trpl, &mut pos)?;
    let mut triples: FxHashMap<(CanonId, CanonId, CanonId), IntervalSet> =
        FxHashMap::default();
    let mut prev_s = 0u32;
    for _ in 0..n {
        let ds = read_varint_u32(trpl, &mut pos)?;
        prev_s = prev_s.checked_add(ds).ok_or_else(|| {
            StoreError::Corrupt("canon id overflow".into())
        })?;
        let p = read_varint_u32(trpl, &mut pos)?;
        let o = read_varint_u32(trpl, &mut pos)?;
        let key = (CanonId(prev_s), CanonId(p), CanonId(o));
        let iv = read_intervals(trpl, &mut pos)?;
        if triples.insert(key, iv).is_some() {
            return Err(StoreError::Corrupt("duplicate archive triple".into()));
        }
    }

    // LMAP.
    let lmap = c.section(TAG_LMAP)?;
    let mut pos = 0usize;
    let n = read_varint_usize(lmap, &mut pos)?;
    let mut last_mapping = Vec::with_capacity(n.min(lmap.len() - pos));
    for _ in 0..n {
        last_mapping.push(CanonId(read_varint_u32(lmap, &mut pos)?));
    }

    let archive = Archive {
        num_versions,
        next_canon,
        triples,
        lifespans,
        labels,
        last_mapping,
    };
    if archive.num_versions() as u64 != header.counts[0]
        || archive.entity_count() as u64 != header.counts[1]
        || archive.triples.len() as u64 != header.counts[2]
    {
        return Err(StoreError::Corrupt(
            "archive counts disagree with header".into(),
        ));
    }
    Ok((vocab, archive))
}

/// Save an archive to a container file.
pub fn save_archive_file(
    path: impl AsRef<Path>,
    vocab: &Vocab,
    archive: &Archive,
) -> Result<(), StoreError> {
    let file = std::fs::File::create(path)?;
    save_archive(std::io::BufWriter::new(file), vocab, archive)
}

/// Load an archive from a container file.
pub fn load_archive_file(
    path: impl AsRef<Path>,
) -> Result<(Vocab, Archive), StoreError> {
    load_archive(&std::fs::read(path)?)
}
