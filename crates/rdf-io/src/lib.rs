//! N-Triples I/O for the `rdf-model` triple graphs.
//!
//! The evaluation datasets of the paper (EFO, GtoPdb exports, DBpedia
//! subsets) are RDF dumps; this crate provides a from-scratch N-Triples
//! 1.1 parser and serializer so graphs can be loaded from and saved to
//! the interchange format, plus file helpers.
//!
//! ```
//! use rdf_model::Vocab;
//! use rdf_io::{parse_graph, write_graph};
//!
//! let mut vocab = Vocab::new();
//! let g = parse_graph(
//!     "<u:ss> <u:address> _:b1 .\n_:b1 <u:zip> \"EH8\" .\n",
//!     &mut vocab,
//! ).unwrap();
//! assert_eq!(g.triple_count(), 2);
//! let text = write_graph(&g, &vocab);
//! assert!(text.contains("\"EH8\""));
//! ```

#![warn(missing_docs)]

pub mod ntriples;

pub use ntriples::{
    parse_graph, parse_graph_reader, parse_triples, write_graph, ParseError,
    ReadError,
};

use rdf_model::{RdfGraph, Vocab};
use std::io::Write;
use std::path::Path;

/// Load an N-Triples file into a graph, streaming line by line (the file
/// is never materialised as one `String`).
pub fn load_file(
    path: impl AsRef<Path>,
    vocab: &mut Vocab,
) -> Result<RdfGraph, Box<dyn std::error::Error>> {
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    Ok(parse_graph_reader(reader, vocab)?)
}

/// Save a graph to an N-Triples file (buffered).
pub fn save_file(
    path: impl AsRef<Path>,
    graph: &RdfGraph,
    vocab: &Vocab,
) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(write_graph(graph, vocab).as_bytes())?;
    w.flush()
}
