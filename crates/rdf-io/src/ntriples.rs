//! N-Triples 1.1 parser and serializer, written from scratch.
//!
//! Supports the grammar subset needed for evolving-RDF datasets:
//! IRIs (`<...>` with `\u`/`\U` escapes), blank node labels (`_:name`),
//! and literals (`"..."` with string escapes, optional `@lang` tag or
//! `^^<datatype>` suffix). Datatype and language tag are folded into the
//! literal's label text, matching the paper's model where a literal is
//! one opaque value.
//!
//! The parser is line-oriented and reports errors with line/column
//! positions; the serializer round-trips every graph the parser accepts.

use rdf_model::{RdfGraph, RdfGraphBuilder, Term, Vocab};
use std::fmt;
use std::io::BufRead;

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
    /// 0-based byte offset from the start of the document.
    pub byte: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {} (byte {}): {}",
            self.line, self.column, self.byte, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Error from the streaming ([`BufRead`]) parsing entry points: either the
/// underlying reader failed or the document is malformed.
#[derive(Debug)]
pub enum ReadError {
    /// The reader returned an I/O error.
    Io(std::io::Error),
    /// The document failed to parse.
    Parse(ParseError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<ParseError> for ReadError {
    fn from(e: ParseError) -> Self {
        ReadError::Parse(e)
    }
}

/// A single parsed line: subject, predicate, object terms.
type ParsedTriple = (Term, Term, Term);

struct Cursor<'a> {
    text: &'a [u8],
    pos: usize,
    line: usize,
    /// Byte offset of the start of this line within the document.
    base: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line: usize, base: usize) -> Self {
        Cursor {
            text: text.as_bytes(),
            pos: 0,
            line,
            base,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            column: self.pos + 1,
            byte: self.base + self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(self.error(format!(
                "expected '{}', found '{}'",
                b as char, got as char
            ))),
            None => Err(self.error(format!(
                "expected '{}', found end of line",
                b as char
            ))),
        }
    }

    fn at_end_or_comment(&mut self) -> bool {
        self.skip_ws();
        matches!(self.peek(), None | Some(b'#'))
    }

    /// Parse `<IRI>` (after the opening `<` has been peeked).
    fn iri(&mut self) -> Result<String, ParseError> {
        self.expect(b'<')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'>') => return Ok(out),
                Some(b'\\') => {
                    let esc = self.unicode_escape()?;
                    out.push(esc);
                }
                Some(b) if b > 0x20 && b != b'"' && b != b'{' && b != b'}' => {
                    // Collect UTF-8 continuation bytes verbatim.
                    out.push(self.decode_utf8_tail(b)?);
                }
                Some(b) => {
                    return Err(
                        self.error(format!("invalid IRI character 0x{b:02x}"))
                    )
                }
                None => return Err(self.error("unterminated IRI")),
            }
        }
    }

    /// Decode one UTF-8 scalar whose first byte is `first`.
    fn decode_utf8_tail(&mut self, first: u8) -> Result<char, ParseError> {
        let len = match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            0xf0..=0xf7 => 4,
            _ => return Err(self.error("invalid UTF-8 byte")),
        };
        let start = self.pos - 1;
        for _ in 1..len {
            self.bump()
                .ok_or_else(|| self.error("truncated UTF-8 sequence"))?;
        }
        let s = std::str::from_utf8(&self.text[start..self.pos])
            .map_err(|_| self.error("invalid UTF-8 sequence"))?;
        Ok(s.chars().next().unwrap())
    }

    /// Parse `\uXXXX` or `\UXXXXXXXX` (backslash already consumed).
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let kind = self
            .bump()
            .ok_or_else(|| self.error("truncated escape"))?;
        let len = match kind {
            b'u' => 4,
            b'U' => 8,
            other => {
                return Err(self.error(format!(
                    "invalid IRI escape '\\{}'",
                    other as char
                )))
            }
        };
        self.hex_char(len)
    }

    fn hex_char(&mut self, len: usize) -> Result<char, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..len {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            v = v * 16 + d;
        }
        char::from_u32(v).ok_or_else(|| self.error("invalid code point"))
    }

    /// Parse `_:label`.
    fn blank(&mut self) -> Result<String, ParseError> {
        self.expect(b'_')?;
        self.expect(b':')?;
        let mut out = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'
            {
                out.push(b as char);
                self.pos += 1;
            } else {
                break;
            }
        }
        if out.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        // A trailing '.' belongs to the statement terminator.
        while out.ends_with('.') {
            out.pop();
            self.pos -= 1;
        }
        if out.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        Ok(out)
    }

    /// Parse a quoted literal with optional `@lang` / `^^<dt>` suffix.
    /// The suffix is folded into the returned label text.
    fn literal(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    let b = self
                        .bump()
                        .ok_or_else(|| self.error("truncated escape"))?;
                    match b {
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b'f' => out.push('\u{c}'),
                        b'"' => out.push('"'),
                        b'\'' => out.push('\''),
                        b'\\' => out.push('\\'),
                        b'u' => out.push(self.hex_char(4)?),
                        b'U' => out.push(self.hex_char(8)?),
                        other => {
                            return Err(self.error(format!(
                                "invalid string escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                Some(b) => out.push(self.decode_utf8_tail(b)?),
                None => return Err(self.error("unterminated literal")),
            }
        }
        // Optional language tag or datatype.
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let mut tag = String::new();
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        tag.push(b as char);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if tag.is_empty() {
                    return Err(self.error("empty language tag"));
                }
                out.push('@');
                out.push_str(&tag);
            }
            Some(b'^') => {
                self.expect(b'^')?;
                self.expect(b'^')?;
                let dt = self.iri()?;
                out.push_str("^^");
                out.push_str(&dt);
            }
            _ => {}
        }
        Ok(out)
    }

    /// Parse a subject/predicate/object term.
    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => Ok(Term::Uri(self.iri()?)),
            Some(b'_') => Ok(Term::Blank(self.blank()?)),
            Some(b'"') => Ok(Term::Literal(self.literal()?)),
            Some(b) => Err(self.error(format!(
                "expected term, found '{}'",
                b as char
            ))),
            None => Err(self.error("expected term, found end of line")),
        }
    }

    fn triple(&mut self) -> Result<ParsedTriple, ParseError> {
        let s = self.term()?;
        let p = self.term()?;
        let o = self.term()?;
        self.skip_ws();
        self.expect(b'.')?;
        if !self.at_end_or_comment() {
            return Err(self.error("trailing content after '.'"));
        }
        Ok((s, p, o))
    }
}

/// Strip one trailing `\n` or `\r\n` (what [`BufRead::read_line`] leaves
/// behind) from a line.
fn trim_newline(line: &str) -> &str {
    line.strip_suffix('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .unwrap_or(line)
}

/// Parse an N-Triples document into terms.
pub fn parse_triples(input: &str) -> Result<Vec<ParsedTriple>, ParseError> {
    let mut out = Vec::new();
    let mut base = 0usize;
    for (i, raw) in input.split_inclusive('\n').enumerate() {
        let mut cur = Cursor::new(trim_newline(raw), i + 1, base);
        base += raw.len();
        if cur.at_end_or_comment() {
            continue;
        }
        out.push(cur.triple()?);
    }
    Ok(out)
}

/// Parse N-Triples from any buffered reader, interning into the supplied
/// vocabulary — the streaming ingest path.
///
/// Only one line is held in memory at a time, so arbitrarily large
/// documents never materialise as a single `String`. Errors carry the
/// real line/column/byte position, including RDF-convention violations
/// (literal subject, blank or literal predicate), which the line-batched
/// path could only attribute to a triple index.
pub fn parse_graph_reader<R: BufRead>(
    mut reader: R,
    vocab: &mut Vocab,
) -> Result<RdfGraph, ReadError> {
    let mut b = RdfGraphBuilder::new(vocab);
    let mut raw = String::new();
    let mut line_no = 0usize;
    let mut base = 0usize;
    loop {
        raw.clear();
        let n = reader.read_line(&mut raw)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let mut cur = Cursor::new(trim_newline(&raw), line_no, base);
        if !cur.at_end_or_comment() {
            let (s, p, o) = cur.triple()?;
            b.add_triple(&s, &p, &o).map_err(|e| ParseError {
                line: line_no,
                column: 1,
                byte: base,
                message: e.to_string(),
            })?;
        }
        base += n;
    }
    Ok(b.finish())
}

/// Parse an N-Triples document directly into an [`RdfGraph`], interning
/// into the supplied vocabulary. Convenience wrapper over
/// [`parse_graph_reader`] for in-memory input.
pub fn parse_graph(
    input: &str,
    vocab: &mut Vocab,
) -> Result<RdfGraph, ParseError> {
    parse_graph_reader(input.as_bytes(), vocab).map_err(|e| match e {
        // Reading from a byte slice cannot fail.
        ReadError::Io(io) => unreachable!("in-memory read failed: {io}"),
        ReadError::Parse(p) => p,
    })
}

/// Escape a string for inclusion in an IRI or literal.
fn escape_into(out: &mut String, s: &str, iri: bool) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' if !iri => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if iri && (c <= ' ' || c == '<' || c == '>' || c == '"') => {
                out.push_str(&format!("\\u{:04X}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serialize a graph to canonical N-Triples: one statement per line,
/// lines sorted lexicographically. Blank nodes use their recorded local
/// names when available, otherwise `_:bN` from the node id.
///
/// Sorting makes the output independent of node-id assignment, so
/// `write_graph(parse_graph(text)) == text` for any `text` this function
/// produced — a byte-level fixed point, not just a structural one.
pub fn write_graph(graph: &RdfGraph, vocab: &Vocab) -> String {
    let g = graph.graph();
    let mut lines: Vec<String> = Vec::with_capacity(g.triple_count());
    for t in g.triples() {
        let mut out = String::with_capacity(64);
        for (i, n) in [t.s, t.p, t.o].into_iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match vocab.resolve(g.label(n)) {
                rdf_model::LabelRef::Uri(u) => {
                    out.push('<');
                    escape_into(&mut out, u, true);
                    out.push('>');
                }
                rdf_model::LabelRef::Literal(l) => {
                    // Split off a folded @lang / ^^<dt> suffix if present.
                    write_literal(&mut out, l);
                }
                rdf_model::LabelRef::Blank => {
                    out.push_str("_:");
                    match graph.blank_name(n) {
                        Some(name) => out.push_str(name),
                        None => out.push_str(&format!("b{}", n.0)),
                    }
                }
            }
        }
        out.push_str(" .\n");
        lines.push(out);
    }
    lines.sort_unstable();
    lines.concat()
}

/// Write a literal label, re-expanding folded `@lang` / `^^dt` suffixes.
fn write_literal(out: &mut String, label: &str) {
    // Find a fold point: the label was built as value + ("@lang" | "^^" + dt).
    // Serialise the value quoted; suffixes as-is (datatype re-bracketed).
    if let Some(idx) = label.rfind("^^") {
        let (value, dt) = label.split_at(idx);
        out.push('"');
        escape_into(out, value, false);
        out.push('"');
        out.push_str("^^<");
        escape_into(out, &dt[2..], true);
        out.push('>');
        return;
    }
    if let Some(idx) = label.rfind('@') {
        let (value, tag) = label.split_at(idx);
        let tag_ok = tag.len() > 1
            && tag[1..].chars().all(|c| c.is_ascii_alphanumeric() || c == '-');
        if tag_ok && !value.is_empty() {
            out.push('"');
            escape_into(out, value, false);
            out.push('"');
            out.push_str(tag);
            return;
        }
    }
    out.push('"');
    escape_into(out, label, false);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_triples() {
        let doc = "<http://e.org/s> <http://e.org/p> <http://e.org/o> .\n\
                   <http://e.org/s> <http://e.org/q> \"hello\" .\n";
        let ts = parse_triples(doc).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].0, Term::uri("http://e.org/s"));
        assert_eq!(ts[1].2, Term::literal("hello"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let doc = "# a comment\n\n<u:s> <u:p> _:b1 . # trailing\n";
        let ts = parse_triples(doc).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].2, Term::blank("b1"));
    }

    #[test]
    fn string_escapes() {
        let doc = r#"<u:s> <u:p> "line\nbreak \"quoted\" tab\t\\" ."#;
        let ts = parse_triples(doc).unwrap();
        assert_eq!(
            ts[0].2,
            Term::literal("line\nbreak \"quoted\" tab\t\\")
        );
    }

    #[test]
    fn unicode_escapes() {
        let doc = "<u:s> <u:p> \"caf\\u00E9 \\U0001F600\" .";
        let ts = parse_triples(doc).unwrap();
        assert_eq!(ts[0].2, Term::literal("café 😀"));
    }

    #[test]
    fn language_tags_and_datatypes() {
        let doc = "<u:s> <u:p> \"chat\"@fr .\n\
                   <u:s> <u:q> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .";
        let ts = parse_triples(doc).unwrap();
        assert_eq!(ts[0].2, Term::literal("chat@fr"));
        assert_eq!(
            ts[1].2,
            Term::literal("42^^http://www.w3.org/2001/XMLSchema#int")
        );
    }

    #[test]
    fn error_positions() {
        let err = parse_triples("<u:s> <u:p> .").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected term"));
        let err = parse_triples("<u:s> <u:p> \"x\"").unwrap_err();
        assert!(err.message.contains("expected '.'"));
        let err =
            parse_triples("ok <u:p> <u:o> .").unwrap_err();
        assert!(err.message.contains("expected term"));
    }

    #[test]
    fn literal_subject_rejected_via_graph() {
        let mut v = Vocab::new();
        let err = parse_graph("\"lit\" <u:p> <u:o> .", &mut v).unwrap_err();
        assert!(err.message.contains("subject"));
    }

    #[test]
    fn round_trip() {
        let mut v = Vocab::new();
        let doc = "<u:s> <u:p> \"a b c\" .\n\
                   <u:s> <u:q> _:rec .\n\
                   _:rec <u:zip> \"EH8 9\\\"AB\\\"\" .\n\
                   _:rec <u:city> \"Edinburgh\"@en .\n";
        let g = parse_graph(doc, &mut v).unwrap();
        let written = write_graph(&g, &v);
        let mut v2 = Vocab::new();
        let g2 = parse_graph(&written, &mut v2).unwrap();
        assert_eq!(g.triple_count(), g2.triple_count());
        assert_eq!(g.node_count(), g2.node_count());
        // Second round trip is byte-identical (canonical order).
        let written2 = write_graph(&g2, &v2);
        assert_eq!(written, written2);
    }

    #[test]
    fn blank_node_dot_disambiguation() {
        // `_:b1.` — the dot is the statement terminator, not part of the
        // label.
        let ts = parse_triples("<u:s> <u:p> _:b1.").unwrap();
        assert_eq!(ts[0].2, Term::blank("b1"));
    }

    #[test]
    fn iri_escapes_round_trip() {
        let mut v = Vocab::new();
        let g = {
            let mut b = rdf_model::RdfGraphBuilder::new(&mut v);
            b.uuu("http://e.org/space here", "u:p", "u:o");
            b.finish()
        };
        let written = write_graph(&g, &v);
        assert!(written.contains("\\u0020"));
        let mut v2 = Vocab::new();
        let g2 = parse_graph(&written, &mut v2).unwrap();
        assert_eq!(g2.triple_count(), 1);
        assert!(v2.find_uri("http://e.org/space here").is_some());
    }
}
