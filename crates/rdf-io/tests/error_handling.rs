//! Table-driven error-handling tests for the N-Triples parser: every
//! malformed input must fail with a located, descriptive error — never
//! panic, never mis-parse.

use rdf_io::{parse_graph, parse_triples};
use rdf_model::Vocab;

#[test]
fn malformed_inputs_report_errors() {
    let cases: &[(&str, &str)] = &[
        ("<u:s> <u:p>", "expected term"),
        ("<u:s> <u:p> <u:o>", "expected '.'"),
        ("<u:s <u:p> <u:o> .", "IRI"),
        ("<u:s> <u:p> \"unterminated .", "unterminated literal"),
        ("<u:s> <u:p> \"bad\\escape\" .", "invalid string escape"),
        ("<u:s> <u:p> \"x\"@ .", "empty language tag"),
        ("<u:s> <u:p> _: .", "empty blank node label"),
        ("<u:s> <u:p> <u:o> . trailing", "trailing content"),
        ("<u:s> <u:p> \"\\uZZZZ\" .", "invalid hex digit"),
        ("<u:s> <u:p> \"\\uD800\" .", "invalid code point"),
        ("nonsense line", "expected term"),
        ("<u:s> <u:p> <u:o> extra .", "expected '.'"),
    ];
    for (input, needle) in cases {
        let err = parse_triples(input)
            .expect_err(&format!("input {input:?} must fail"));
        assert!(
            err.message.contains(needle),
            "input {input:?}: error {:?} should mention {needle:?}",
            err.message
        );
        assert_eq!(err.line, 1);
        assert!(err.column >= 1);
    }
}

#[test]
fn error_line_numbers_count_from_one() {
    let doc = "<u:s> <u:p> <u:o> .\n# fine\n<u:s> <u:p> broken .\n";
    let err = parse_triples(doc).unwrap_err();
    assert_eq!(err.line, 3);
}

#[test]
fn error_byte_offsets_locate_the_failure() {
    // The bad term starts 12 bytes into line 3; the two preceding lines
    // contribute 20 + 7 bytes (including newlines).
    let doc = "<u:s> <u:p> <u:o> .\n# fine\n<u:s> <u:p> broken .\n";
    let err = parse_triples(doc).unwrap_err();
    assert_eq!(err.byte, 20 + 7 + 12);
    assert_eq!(err.column, 13);
    assert_eq!(&doc[err.byte..err.byte + 6], "broken");
    // First-line errors: byte offset equals column - 1.
    let err = parse_triples("<u:s> <u:p> .").unwrap_err();
    assert_eq!(err.byte, err.column - 1);
    // Display mentions the offset.
    assert!(err.to_string().contains("byte"));
}

#[test]
fn streaming_reader_matches_in_memory_parse() {
    let doc = "<u:s> <u:p> \"v1\" .\r\n<u:s> <u:q> _:b .\n_:b <u:r> \"x\"@en .\n";
    let mut v1 = rdf_model::Vocab::new();
    let g1 = parse_graph(doc, &mut v1).unwrap();
    let mut v2 = rdf_model::Vocab::new();
    // A BufReader with a pathologically small buffer still yields whole
    // lines via read_line; the graph must be identical.
    let reader = std::io::BufReader::with_capacity(
        4,
        std::io::Cursor::new(doc.as_bytes()),
    );
    let g2 = rdf_io::parse_graph_reader(reader, &mut v2).unwrap();
    assert_eq!(g1.triple_count(), g2.triple_count());
    assert_eq!(g1.node_count(), g2.node_count());
    assert_eq!(rdf_io::write_graph(&g1, &v1), rdf_io::write_graph(&g2, &v2));
}

#[test]
fn streaming_reader_reports_convention_violations_with_position() {
    let doc = "<u:s> <u:p> <u:o> .\n\"lit\" <u:p> <u:o> .\n";
    let mut v = rdf_model::Vocab::new();
    let err = rdf_io::parse_graph_reader(doc.as_bytes(), &mut v).unwrap_err();
    match err {
        rdf_io::ReadError::Parse(p) => {
            assert_eq!(p.line, 2);
            assert_eq!(p.byte, 20);
            assert!(p.message.contains("subject"));
        }
        rdf_io::ReadError::Io(e) => panic!("unexpected io error: {e}"),
    }
}

#[test]
fn rdf_convention_violations_are_reported() {
    let mut v = Vocab::new();
    for (doc, needle) in [
        ("\"literal\" <u:p> <u:o> .", "subject"),
        ("<u:s> \"lit\" <u:o> .", "predicate"),
        ("<u:s> _:b <u:o> .", "predicate"),
    ] {
        let err = parse_graph(doc, &mut v)
            .expect_err(&format!("{doc:?} must violate RDF conventions"));
        assert!(
            err.message.contains(needle),
            "{doc:?}: {:?} should mention {needle:?}",
            err.message
        );
    }
}

#[test]
fn empty_and_comment_only_documents_parse() {
    assert!(parse_triples("").unwrap().is_empty());
    assert!(parse_triples("\n\n# only comments\n  \n").unwrap().is_empty());
}

#[test]
fn whitespace_tolerance() {
    let doc = "  <u:s>\t\t<u:p>   \"spaced\"  .  # comment\n";
    let ts = parse_triples(doc).unwrap();
    assert_eq!(ts.len(), 1);
}

#[test]
fn file_round_trip() {
    let mut vocab = Vocab::new();
    let g = rdf_io::parse_graph(
        "<u:s> <u:p> \"v1\" .\n<u:s> <u:q> _:b .\n_:b <u:r> \"v2\"@en .\n",
        &mut vocab,
    )
    .unwrap();
    let dir = std::env::temp_dir().join("rdf_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.nt");
    rdf_io::save_file(&path, &g, &vocab).unwrap();
    let mut fresh = Vocab::new();
    let loaded = rdf_io::load_file(&path, &mut fresh).unwrap();
    assert_eq!(loaded.triple_count(), g.triple_count());
    assert_eq!(loaded.node_count(), g.node_count());
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_missing_file_errors() {
    let mut vocab = Vocab::new();
    assert!(rdf_io::load_file("/nonexistent/nope.nt", &mut vocab).is_err());
}
