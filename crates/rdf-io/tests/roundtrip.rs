//! Round-trip property tests: `parse_graph(write_graph(g))` must
//! reproduce `g` exactly at the term level — URIs, literals (including
//! characters that need escaping), language tags, datatypes, and blank
//! nodes — and a second round trip must be byte-identical.

use proptest::prelude::*;
use rdf_io::{parse_graph, write_graph};
use rdf_model::{LabelRef, NodeId, RdfGraph, Term, Vocab};

/// Awkward characters that exercise both literal and IRI escaping.
const TRICKY: &[&str] = &[
    "", " ", "\"", "\\", "\n", "\r", "\t", "\"\"", "\\n", "café", "😀",
    "a b", "x\\\"y", "line1\nline2", "tab\there", "<angle>", "fin.",
];

/// Resolve a node to a self-contained term (blank nodes by their
/// recorded local name) so graphs from different vocabularies compare.
fn term_of(g: &RdfGraph, vocab: &Vocab, n: NodeId) -> Term {
    match vocab.resolve(g.graph().label(n)) {
        LabelRef::Uri(u) => Term::uri(u),
        LabelRef::Literal(l) => Term::literal(l),
        LabelRef::Blank => Term::blank(
            g.blank_name(n).map(str::to_owned).unwrap_or_else(|| format!("b{}", n.0)),
        ),
    }
}

/// The graph as a sorted list of term triples — the identity that must
/// survive serialisation.
fn term_triples(g: &RdfGraph, vocab: &Vocab) -> Vec<(Term, Term, Term)> {
    let mut out: Vec<(Term, Term, Term)> = g
        .graph()
        .triples()
        .iter()
        .map(|t| {
            (
                term_of(g, vocab, t.s),
                term_of(g, vocab, t.p),
                term_of(g, vocab, t.o),
            )
        })
        .collect();
    out.sort();
    out
}

/// A random RDF graph mixing URI/blank subjects and URI/literal/blank
/// objects, with labels drawn from the tricky pool.
fn arb_rdf_graph() -> impl Strategy<Value = (Vocab, RdfGraph)> {
    (1usize..20, any::<u64>()).prop_map(|(m, seed)| {
        let mut vocab = Vocab::new();
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..m {
            let s_uri = format!("http://e.org/s{}", next() % 6);
            let s_blank = format!("bn{}", next() % 5);
            let p = format!("http://e.org/p{}", next() % 4);
            let tricky = TRICKY[(next() % TRICKY.len() as u64) as usize];
            let lit = match next() % 4 {
                0 => tricky.to_string(),
                1 => format!("{tricky}@en"),
                2 => format!("{}^^http://www.w3.org/2001/XMLSchema#string", next() % 9),
                _ => format!("value {} {tricky}", next() % 7),
            };
            let o_blank = format!("bn{}", next() % 5);
            let o_uri = format!("http://e.org/o-{}", next() % 8);
            match next() % 5 {
                0 => b.uuu(&s_uri, &p, &o_uri),
                1 => b.uul(&s_uri, &p, &lit),
                2 => b.uub(&s_uri, &p, &o_blank),
                3 => b.bul(&s_blank, &p, &lit),
                _ => b.bub(&s_blank, &p, &o_blank),
            }
        }
        let g = b.finish();
        (vocab, g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse_graph(write_graph(g)) == g` up to term identity, and the
    /// canonical (line-sorted) serialisation is a byte-level fixed point:
    /// reparsing and re-writing reproduces the text exactly even though
    /// node ids are reassigned by first appearance.
    #[test]
    fn write_parse_is_identity((vocab, g) in arb_rdf_graph()) {
        let text = write_graph(&g, &vocab);
        let mut fresh = Vocab::new();
        let parsed = parse_graph(&text, &mut fresh).unwrap();
        prop_assert_eq!(parsed.graph().triple_count(), g.graph().triple_count());
        prop_assert_eq!(parsed.graph().node_count(), g.graph().node_count());
        prop_assert_eq!(term_triples(&parsed, &fresh), term_triples(&g, &vocab));
        let text2 = write_graph(&parsed, &fresh);
        prop_assert_eq!(text, text2);
    }
}

#[test]
fn escaped_literal_round_trip() {
    let mut vocab = Vocab::new();
    let g = {
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        b.uul("u:s", "u:p", "say \"hi\"\\now\nor\tnever\r");
        b.uul("u:s", "u:q", "plain@en");
        b.uub("u:s", "u:rec", "b-1");
        b.bul("b-1", "u:field", "nested \\\" escape");
        b.finish()
    };
    let text = write_graph(&g, &vocab);
    let mut fresh = Vocab::new();
    let parsed = parse_graph(&text, &mut fresh).unwrap();
    assert_eq!(term_triples(&parsed, &fresh), term_triples(&g, &vocab));
}

#[test]
fn blank_heavy_graph_round_trip() {
    // A chain of blank nodes only — names must survive verbatim.
    let mut vocab = Vocab::new();
    let g = {
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        b.bub("a", "u:next", "b");
        b.bub("b", "u:next", "c");
        b.bul("c", "u:val", "end");
        b.finish()
    };
    let text = write_graph(&g, &vocab);
    let mut fresh = Vocab::new();
    let parsed = parse_graph(&text, &mut fresh).unwrap();
    assert_eq!(term_triples(&parsed, &fresh), term_triples(&g, &vocab));
    assert_eq!(parsed.graph().triple_count(), 3);
}
