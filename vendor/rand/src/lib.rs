//! Offline vendored stand-in for the crates.io `rand` crate.
//!
//! The container building this workspace has no registry access, so this
//! crate implements exactly the API subset the workspace uses: the [`Rng`]
//! and [`SeedableRng`] traits, [`rngs::SmallRng`], uniform `gen_range`
//! over integer and float ranges, and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the synthetic data generators require.

/// Uniform sampling from a range type, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniformly distributed value from `self`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small fast generator (xoshiro256++), API-compatible with
    /// `rand::rngs::SmallRng` for the subset we use.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=5u32);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(4.0..11.0);
            assert!((4.0..11.0).contains(&f));
        }
        // Both halves of gen_bool occur.
        let hits = (0..1000).filter(|_| rng.gen_bool(0.3)).count();
        assert!(hits > 150 && hits < 450, "gen_bool(0.3) hit {hits}/1000");
    }
}
