//! A tiny regex-like string generator backing `&str` strategies.
//!
//! Supported syntax — enough for patterns like `".{0,12}"` or
//! `"[a-z]{1,8}"`:
//!
//! * `.` — any printable ASCII character;
//! * `[abc]`, `[a-z0-9]` — character classes (no negation);
//! * literal characters, with `\` escaping;
//! * quantifiers `?`, `*`, `+`, `{n}`, `{a,b}` (bounded: `*`/`+` cap at 8).

use crate::test_runner::TestRng;

enum Atom {
    Any,
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).expect("dangling escape in pattern");
                i += 1;
                Atom::Literal(c)
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn draw(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Any => char::from(0x20 + rng.below(0x5f) as u8),
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= span;
            }
            ranges.first().map_or('?', |&(lo, _)| lo)
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(draw(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate_from_pattern;
    use crate::test_runner::TestRng;

    #[test]
    fn patterns_generate_in_spec() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..200 {
            let s = generate_from_pattern(".{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let t = generate_from_pattern("[a-c]{2,3}x?", &mut rng);
            let stem: String = t.chars().take_while(|&c| c != 'x').collect();
            assert!((2..=3).contains(&stem.chars().count()));
            assert!(stem.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
