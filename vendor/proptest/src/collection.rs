//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec`](fn@vec): an exact `usize` or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with the given element strategy and length spec.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
