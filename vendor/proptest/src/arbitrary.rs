//! `any::<T>()` for the primitive types the workspace needs.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning several orders of magnitude.
        let magnitude = (rng.below(61) as i32 - 30) as f64;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * magnitude.exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from(0x20 + rng.below(0x5f) as u8)
    }
}
