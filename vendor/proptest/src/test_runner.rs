//! Test configuration and the deterministic generator behind a run.

/// Configuration for a [`crate::proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic random source for value generation (xoshiro256++ seeded
/// from an FNV-1a hash of the test path, so every test has a stable,
/// independent stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from a test's module path + name.
    pub fn for_test(test_path: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seeded(h)
    }

    /// A generator seeded from a raw 64-bit value (SplitMix64 expansion).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
