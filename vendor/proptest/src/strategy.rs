//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking:
/// `generate` draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build a second strategy from each generated value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// `&str` patterns act as simple regex-like string strategies
/// (see [`crate::string::generate_from_pattern`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
