//! Offline vendored stand-in for the crates.io `criterion` crate.
//!
//! The container building this workspace has no registry access, so this
//! crate implements the API subset the `rdf-bench` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration
//! (`measurement_time`, `warm_up_time`, `sample_size`),
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — per sample it times a batch of
//! iterations with `std::time::Instant` and reports the median per-iteration
//! time — but it honours sample counts and filters, so `cargo bench` runs
//! produce comparable numbers between commits on the same machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}


impl Criterion {
    /// Apply command-line configuration (`cargo bench -- <filter>`);
    /// harness flags cargo passes (e.g. `--bench`) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.render();
        let filter = self.filter.clone();
        run_one(
            &label,
            filter.as_deref(),
            10,
            Duration::from_secs(2),
            Duration::from_millis(300),
            &mut f,
        );
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_one(
            &label,
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_one(
            &label,
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    label: &str,
    filter: Option<&str>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(filter) = filter {
        if !label.contains(filter) {
            return;
        }
    }

    // Warm-up: find an iteration count that fills a sample's time slot.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up_time {
        f(&mut b);
        per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        b.iters = (b.iters * 2).min(1 << 20);
    }

    let slot = measurement_time / sample_size.max(1) as u32;
    let iters = (slot.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1 << 24) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let best = samples[0];
    println!(
        "{label:<56} median {:>12?}  best {:>12?}  ({} samples x {} iters)",
        median,
        best,
        samples.len(),
        iters
    );
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
