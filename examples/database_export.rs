//! Database export: aligning two RDF exports of the same relational
//! database made under different URI schemes (the §5.2 scenario).
//!
//! Builds a small pharmacology database, evolves it one step, exports
//! both versions through the W3C Direct Mapping with *different URI
//! prefixes*, and shows that Hybrid/Overlap recover the correspondence
//! although not a single URI is shared — the relational-view of the
//! problem the paper describes: "change all the table names and column
//! names and all the key values; all that is kept are the non-key data
//! values and the foreign key constraints".
//!
//! Run with `cargo run --release --example database_export`.

use rdf_align_repro::prelude::*;
use rdf_relational::{
    direct_mapping, ground_truth, Database, DeleteMode, MappingOptions,
};

fn main() {
    // A hand-populated database (schema from the generator).
    let mut db = Database::new(rdf_datagen::gtopdb_schema());
    db.insert("family", vec![1i64.into(), "calcitonin receptors".into()])
        .unwrap();
    db.insert(
        "target",
        vec![
            1i64.into(),
            "calcitonin receptor".into(),
            "CTR".into(),
            "Human".into(),
            1i64.into(),
        ],
    )
    .unwrap();
    for (id, name, kind) in [
        (685i64, "calcitonin", "peptide"),
        (686, "calcitonin gene related peptide", "peptide"),
        (687, "amylin", "peptide"),
        (1, "aspirin", "small molecule"),
    ] {
        db.insert(
            "ligand",
            vec![
                id.into(),
                name.into(),
                kind.into(),
                "Human".into(),
                rdf_relational::Value::Null,
                "yes".into(),
            ],
        )
        .unwrap();
    }
    db.insert(
        "interaction",
        vec![1i64.into(), 685i64.into(), 1i64.into(), "agonist".into(), 9.2.into()],
    )
    .unwrap();

    // Export version 1.
    let mut vocab = Vocab::new();
    let mut opt1 = MappingOptions::new("http://gtopdb.org/ver1/");
    opt1.type_triples = false;
    let e1 = direct_mapping(&db, &opt1, &mut vocab);

    // Evolve: rename one ligand, delete another, insert a new one.
    db.update("ligand", "687", "name", "amylin human".into()).unwrap();
    db.delete("ligand", "1", DeleteMode::Cascade).unwrap();
    db.insert(
        "ligand",
        vec![
            900i64.into(),
            "pramlintide".into(),
            "peptide".into(),
            "Human".into(),
            rdf_relational::Value::Null,
            "yes".into(),
        ],
    )
    .unwrap();

    // Export version 2 under a different prefix.
    let mut opt2 = MappingOptions::new("http://pharma.example/2016/");
    opt2.type_triples = false;
    let e2 = direct_mapping(&db, &opt2, &mut vocab);

    let gt = ground_truth(&e1, &e2);
    let combined = CombinedGraph::union(&vocab, &e1.graph, &e2.graph);
    println!(
        "=== Two direct-mapping exports, zero shared URIs ===\n\
         v1: {} triples under http://gtopdb.org/ver1/\n\
         v2: {} triples under http://pharma.example/2016/\n\
         ground truth: {} persistent entities\n",
        e1.graph.triple_count(),
        e2.graph.triple_count(),
        gt.len()
    );

    let trivial = trivial_partition(&combined);
    let hybrid = hybrid_partition(&combined).partition;
    let overlap = overlap_align(&combined, &vocab, OverlapConfig::default())
        .weighted
        .partition;

    for (name, partition) in [
        ("Trivial", &trivial),
        ("Hybrid", &hybrid),
        ("Overlap", &overlap),
    ] {
        let counts = node_counts(partition, &combined);
        let b = classify_matches(partition, &combined, &gt);
        println!(
            "{name:>8}: {} aligned classes | exact {} inclusive {} \
             false {} missing {}",
            counts.aligned_classes,
            b.exact,
            b.inclusive,
            b.false_matches,
            b.missing
        );
    }

    // Show a named correspondence end to end.
    let lig685_v1 = e1.entities["row:ligand:685"];
    let lig685_v2 = e2.entities["row:ligand:685"];
    let s = combined.from_source(lig685_v1);
    let t = combined.from_target(lig685_v2);
    println!(
        "\ncalcitonin (ligand 685):\n  v1 URI {}\n  v2 URI {}\n  hybrid-aligned: {}",
        vocab.text(combined.graph().label(s)),
        vocab.text(combined.graph().label(t)),
        hybrid.same_class(s, t)
    );
    let lig687_v1 = e1.entities["row:ligand:687"];
    let lig687_v2 = e2.entities["row:ligand:687"];
    let s = combined.from_source(lig687_v1);
    let t = combined.from_target(lig687_v2);
    println!(
        "amylin (ligand 687, renamed to \"amylin human\"):\n  \
         hybrid-aligned: {}\n  overlap-aligned: {}",
        hybrid.same_class(s, t),
        overlap.same_class(s, t),
    );
}
