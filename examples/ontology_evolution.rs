//! Ontology evolution: tracking an EFO-like ontology across ten
//! releases (the §5.1 scenario).
//!
//! Generates the synthetic EFO dataset, aligns every consecutive version
//! pair with Trivial/Deblank/Hybrid/Overlap, and reports the aligned-edge
//! ratios plus where the URI-prefix migration shows up. Also
//! demonstrates round-tripping one version through N-Triples.
//!
//! Run with `cargo run --release --example ontology_evolution`.

use rdf_align_repro::prelude::*;
use rdf_io::{parse_graph, write_graph};

fn main() {
    let ds = generate_efo(&EfoConfig::default());
    println!("=== EFO-like evolving ontology: {} versions ===\n", ds.len());

    println!(
        "{:>8} {:>7} {:>7} {:>9} {:>7}  blank share",
        "version", "URIs", "blanks", "literals", "edges"
    );
    for (i, v) in ds.versions.iter().enumerate() {
        let s = v.stats();
        println!(
            "{:>8} {:>7} {:>7} {:>9} {:>7}  {:.1}%",
            i + 1,
            s.uris,
            s.blanks,
            s.literals,
            s.edges,
            100.0 * s.blank_fraction()
        );
    }

    println!("\nConsecutive alignment (aligned-edge ratio):");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9}",
        "pair", "trivial", "deblank", "hybrid", "overlap"
    );
    for i in 0..ds.len() - 1 {
        let c = CombinedGraph::union(
            &ds.vocab,
            &ds.versions[i].graph,
            &ds.versions[i + 1].graph,
        );
        let t = edge_stats(&trivial_partition(&c), &c).ratio();
        let d = edge_stats(&deblank_partition(&c).partition, &c).ratio();
        let h = edge_stats(&hybrid_partition(&c).partition, &c).ratio();
        let o = edge_stats(
            &overlap_align(&c, &ds.vocab, OverlapConfig::default())
                .weighted
                .partition,
            &c,
        )
        .ratio();
        println!(
            "{:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}{}",
            format!("{}-{}", i + 1, i + 2),
            t,
            d,
            h,
            o,
            if i + 1 == EfoConfig::default().migration_version {
                "   <- URI-prefix migration wave"
            } else {
                ""
            }
        );
    }

    // Ground-truth check on the migration pair: how many truly-matching
    // classes does each method align?
    let m = EfoConfig::default().migration_version;
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[m - 1].graph,
        &ds.versions[m].graph,
    );
    let gt = ds.ground_truth(m - 1, m);
    let h = classify_matches(&hybrid_partition(&c).partition, &c, &gt);
    let d = classify_matches(&deblank_partition(&c).partition, &c, &gt);
    println!(
        "\nAcross the migration ({} -> {}): Deblank finds {} exact matches, \
         Hybrid {} (ground truth: {} persistent entities).",
        m,
        m + 1,
        d.exact,
        h.exact,
        gt.len()
    );

    // N-Triples round trip of the first version.
    let text = write_graph(&ds.versions[0].graph, &ds.vocab);
    let mut fresh = Vocab::new();
    let parsed = parse_graph(&text, &mut fresh).expect("round trip parses");
    println!(
        "\nN-Triples round trip of version 1: {} triples serialised, {} \
         parsed back ({}).",
        ds.versions[0].graph.triple_count(),
        parsed.triple_count(),
        if parsed.triple_count() == ds.versions[0].graph.triple_count() {
            "identical"
        } else {
            "MISMATCH"
        }
    );
}
