//! Scalability: alignment cost on a growing DBpedia-like category graph
//! (the §5.3 scenario / Figure 16).
//!
//! Generates growing versions, times Trivial, Hybrid and Overlap on each
//! consecutive pair, and reports the trend — the paper finds the cost
//! "proportional to the size of the input graphs".
//!
//! Run with `cargo run --release --example scalability -- [scale]`.

use rdf_align_repro::prelude::*;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let ds = generate_dbpedia(&DbpediaConfig::default().scaled(scale));

    println!("=== DBpedia-like category subset, scale {scale} ===\n");
    println!(
        "{:>8} {:>9} {:>9} {:>11} {:>11} {:>11}",
        "version", "nodes", "triples", "trivial", "hybrid", "overlap"
    );
    let mut first_hybrid = None;
    let mut last_hybrid = None;
    for i in 1..ds.len() {
        let c = CombinedGraph::union(
            &ds.vocab,
            &ds.versions[i - 1].graph,
            &ds.versions[i].graph,
        );
        let s = ds.versions[i].stats();

        let t0 = Instant::now();
        std::hint::black_box(trivial_partition(&c));
        let t_trivial = t0.elapsed();

        let t0 = Instant::now();
        std::hint::black_box(hybrid_partition(&c));
        let t_hybrid = t0.elapsed();

        let t0 = Instant::now();
        std::hint::black_box(overlap_align(
            &c,
            &ds.vocab,
            OverlapConfig::default(),
        ));
        let t_overlap = t0.elapsed();

        if first_hybrid.is_none() {
            first_hybrid = Some((s.edges, t_hybrid));
        }
        last_hybrid = Some((s.edges, t_hybrid));
        println!(
            "{:>8} {:>9} {:>9} {:>9.1}ms {:>9.1}ms {:>9.1}ms",
            i + 1,
            s.nodes,
            s.edges,
            t_trivial.as_secs_f64() * 1e3,
            t_hybrid.as_secs_f64() * 1e3,
            t_overlap.as_secs_f64() * 1e3,
        );
    }

    if let (Some((e0, t0)), Some((e1, t1))) = (first_hybrid, last_hybrid) {
        let size_ratio = e1 as f64 / e0 as f64;
        let time_ratio = t1.as_secs_f64() / t0.as_secs_f64().max(1e-9);
        println!(
            "\nGraph grew {size_ratio:.2}x; hybrid time grew {time_ratio:.2}x \
             — the roughly-proportional trend of Figure 16."
        );
    }
}
