//! Quickstart: the worked example of Figure 1.
//!
//! Two versions of a personal-information RDF graph: the first name is
//! corrected, a middle name removed, and the university's URI changes
//! from `ed-uni` to `uoe`. The example runs every alignment method and
//! shows which pairs each one recovers:
//!
//! * label equality (Trivial) aligns the unchanged literals and `ss`;
//! * bisimulation (Deblank) aligns the address records `b1 ~ b3`;
//! * Hybrid aligns the renamed `ed-uni ~ uoe`;
//! * the similarity measure `σ_Edit` aligns the name records `b2 ~ b4`.
//!
//! Run with `cargo run --example quickstart`.

use rdf_align_repro::prelude::*;

fn main() {
    let mut vocab = Vocab::new();

    // Version 1 (left of Figure 1).
    let v1 = {
        let mut b = RdfGraphBuilder::new(&mut vocab);
        b.uub("ss", "address", "b1");
        b.uuu("ss", "employer", "ed-uni");
        b.uub("ss", "name", "b2");
        b.bul("b1", "zip", "EH8");
        b.bul("b1", "city", "Edinburgh");
        b.uul("ed-uni", "name", "University of Edinburgh");
        b.uul("ed-uni", "city", "Edinburgh");
        b.bul("b2", "first", "Sławek");
        b.bul("b2", "middle", "Paweł");
        b.bul("b2", "last", "Staworko");
        b.finish()
    };

    // Version 2 (right of Figure 1).
    let v2 = {
        let mut b = RdfGraphBuilder::new(&mut vocab);
        b.uub("ss", "address", "b3");
        b.uuu("ss", "employer", "uoe");
        b.uub("ss", "name", "b4");
        b.bul("b3", "zip", "EH8");
        b.bul("b3", "city", "Edinburgh");
        b.uul("uoe", "name", "University of Edinburgh");
        b.uul("uoe", "city", "Edinburgh");
        b.bul("b4", "first", "Sławomir");
        b.bul("b4", "last", "Staworko");
        b.finish()
    };

    let combined = CombinedGraph::union(&vocab, &v1, &v2);
    let describe = |n: NodeId| -> String {
        let g = combined.graph();
        match vocab.resolve(g.label(n)) {
            rdf_model::LabelRef::Blank => {
                let (side, local) = combined.to_local(n);
                let graph = match side {
                    Side::Source => &v1,
                    Side::Target => &v2,
                };
                format!("_:{}", graph.blank_name(local).unwrap_or("anon"))
            }
            other => other.to_string(),
        }
    };

    println!("=== Figure 1: two versions of an evolving RDF graph ===\n");
    println!(
        "version 1: {} triples; version 2: {} triples\n",
        v1.triple_count(),
        v2.triple_count()
    );

    // 1. Trivial alignment.
    let trivial = trivial_partition(&combined);
    let view = AlignmentView::new(&trivial, &combined);
    println!(
        "Trivial (label equality) aligns {} pairs — every shared URI and \
         literal, but no blanks:",
        view.pair_count()
    );
    for (s, t) in view.pairs() {
        println!(
            "  {}  ~  {}",
            describe(combined.from_source(s)),
            describe(combined.from_target(t))
        );
    }

    // 2. Deblank: bisimulation on blank nodes.
    let deblank = deblank_partition(&combined).partition;
    let view = AlignmentView::new(&deblank, &combined);
    println!(
        "\nDeblank adds the address records (same content, same structure):"
    );
    for (s, t) in view.pairs() {
        let (gs, gt) =
            (combined.from_source(s), combined.from_target(t));
        if combined.graph().is_blank(gs) {
            println!("  {}  ~  {}", describe(gs), describe(gt));
        }
    }

    // 3. Hybrid: bisimulation on unaligned non-literals.
    let hybrid = hybrid_partition(&combined).partition;
    let view = AlignmentView::new(&hybrid, &combined);
    println!("\nHybrid adds the renamed university URI:");
    for (s, t) in view.pairs() {
        let (gs, gt) =
            (combined.from_source(s), combined.from_target(t));
        if !deblank.same_class(gs, gt) {
            println!("  {}  ~  {}", describe(gs), describe(gt));
        }
    }

    // 4. σ_Edit: the similarity measure catches the edited name record.
    let colors: Vec<u32> = hybrid.colors().iter().map(|c| c.0).collect();
    let sigma =
        SigmaEdit::compute(&combined, &vocab, &colors, SigmaEditConfig::default());
    println!("\nσ_Edit (θ = 0.5) adds the edited name record and its literals:");
    for (n, m, d) in sigma.align_threshold(0.5) {
        println!("  {}  ~  {}   (distance {:.3})", describe(n), describe(m), d);
    }

    println!(
        "\nThe hierarchy Align(Trivial) ⊆ Align(Deblank) ⊆ Align(Hybrid) \
         held at every step."
    );
}
