//! Version archive: the future-work direction of §6.
//!
//! Builds all ten versions of the GtoPdb-like dataset into a single
//! archive, using the Hybrid alignment between consecutive versions to
//! carry entity identity across the per-version URI prefixes, and
//! reports the space savings of interval-decorated triples and of
//! subject factoring ("triples tend to enter and leave with their
//! subject").
//!
//! Run with `cargo run --release --example version_archive`.

use rdf_align_repro::prelude::*;
use rdf_align::variants::match_predicates_by_usage;
use rdf_archive::Archive;

fn main() {
    let ds = generate_gtopdb(&GtopdbConfig::default());
    let mut archive = Archive::new();
    archive.push_first(ds.versions[0].graph.graph());
    for w in ds.versions.windows(2) {
        let combined =
            CombinedGraph::union(&ds.vocab, &w[0].graph, &w[1].graph);
        // Overlap carries identity *through* attribute edits, so a
        // renamed-and-edited tuple stays one archived entity.
        let base = overlap_align(&combined, &ds.vocab, OverlapConfig::default())
            .weighted
            .partition;
        // GtoPdb's per-version prefixes leave all attribute predicates in
        // one contentless mega-class; pair them by usage overlap (the
        // robust form of the §5.1 predicate fix) so identity can be
        // carried across versions.
        let matching = match_predicates_by_usage(&combined, &base, 0.5);
        let partition = matching.apply(&base);
        archive.push_aligned(w[1].graph.graph(), &combined, &partition);
    }

    println!(
        "=== Archive of {} versions ({} canonical entities) ===\n",
        archive.num_versions(),
        archive.entity_count()
    );

    // Every version reconstructs exactly.
    for (v, version) in ds.versions.iter().enumerate() {
        let got = archive.version_triples(v as u32).len();
        let want = version.graph.triple_count();
        assert_eq!(got, want, "version {v} reconstruction");
    }
    println!("all {} versions reconstruct exactly\n", ds.len());

    let s = archive.space_stats();
    println!("storage scheme comparison:");
    println!(
        "  naive (every version whole):      {:>8} triples",
        s.naive_triples
    );
    println!(
        "  interval-decorated:               {:>8} triples + {} intervals",
        s.distinct_triples, s.triple_intervals
    );
    println!(
        "  subject-factored:                 {:>8} triples + {} intervals",
        s.distinct_triples, s.factored_intervals
    );
    println!(
        "\n{:.1}% of triples enter and leave with their subject \
         (the paper's preliminary observation).",
        100.0 * s.subject_covered_fraction()
    );
    println!(
        "compression vs naive: {:.2}x (intervals), {:.2}x (factored)",
        s.naive_triples as f64 / (s.distinct_triples + s.triple_intervals) as f64,
        s.naive_triples as f64
            / (s.distinct_triples + s.factored_intervals) as f64
    );
}
