//! Umbrella crate for the reproduction of *RDF Graph Alignment with
//! Bisimulation* (Buneman & Staworko, PVLDB 9(12), 2016).
//!
//! Re-exports the workspace crates under one roof and provides a
//! [`prelude`] for the examples and integration tests.
//!
//! * [`rdf_model`] — triple graphs, labels, unions, ground truth;
//! * [`rdf_io`] — N-Triples parser/serializer;
//! * [`rdf_align`] — the paper's alignment methods;
//! * [`rdf_edit`] — Levenshtein, Hungarian, `σ_Edit`, similarity flooding;
//! * [`rdf_relational`] — relational database + W3C Direct Mapping;
//! * [`rdf_datagen`] — synthetic evolving datasets with ground truth;
//! * [`rdf_archive`] — compact multi-version archives built on alignments;
//! * [`rdf_store`] — the persistent `.rdfb` dictionary-encoded graph store.

#![warn(missing_docs)]

pub use rdf_align;
pub use rdf_archive;
pub use rdf_datagen;
pub use rdf_edit;
pub use rdf_io;
pub use rdf_model;
pub use rdf_relational;
pub use rdf_store;

/// Most-used items across the workspace.
pub mod prelude {
    pub use rdf_align::methods::{
        deblank_partition, hybrid_partition, trivial_partition,
    };
    pub use rdf_align::metrics::{classify_matches, edge_stats, node_counts};
    pub use rdf_align::overlap_align::{overlap_align, OverlapConfig};
    pub use rdf_align::{AlignmentView, Partition, WeightedPartition};
    pub use rdf_datagen::{
        generate_dbpedia, generate_efo, generate_gtopdb, DbpediaConfig,
        EfoConfig, GtopdbConfig,
    };
    pub use rdf_edit::sigma_edit::{SigmaEdit, SigmaEditConfig};
    pub use rdf_model::{
        CombinedGraph, GraphStats, GroundTruth, NodeId, RdfGraph,
        RdfGraphBuilder, Side, Term, Vocab,
    };
}
