//! Approximation-quality tests: the overlap alignment is a *sound*
//! approximation of `σ_Edit` (§4.7, Theorem 1) — everything it aligns is
//! σ_Edit-close — and its incompleteness is bounded on realistic
//! workloads.

use rdf_align_repro::prelude::*;
use rdf_edit::algebra::oplus;

fn small_gtopdb() -> rdf_datagen::EvolvingDataset {
    generate_gtopdb(&GtopdbConfig {
        ligands: 25,
        versions: 4,
        ..GtopdbConfig::default()
    })
}

#[test]
fn theorem1_on_generated_data() {
    // For every overlap-aligned pair: σ_Edit(n, m) ≤ ω(n) ⊕ ω(m).
    let ds = small_gtopdb();
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[2].graph,
        &ds.versions[3].graph,
    );
    let outcome = overlap_align(&c, &ds.vocab, OverlapConfig::default());
    let xi = &outcome.weighted;
    let hybrid = hybrid_partition(&c).partition;
    let colors: Vec<u32> = hybrid.colors().iter().map(|x| x.0).collect();
    let sigma = SigmaEdit::compute(
        &c,
        &ds.vocab,
        &colors,
        SigmaEditConfig {
            epsilon: 1e-9,
            max_iterations: 16,
        },
    );
    let mut checked = 0;
    let mut violations = 0;
    for s in c.source_nodes() {
        if c.graph().is_literal(s) {
            continue;
        }
        for t in c.target_nodes() {
            if c.graph().is_literal(t) {
                continue;
            }
            if xi.partition.same_class(s, t) && !hybrid.same_class(s, t) {
                // Newly overlap-aligned (beyond hybrid): the interesting
                // pairs for the theorem.
                checked += 1;
                let bound = oplus(xi.weight(s), xi.weight(t));
                if sigma.distance(s, t) > bound + 1e-9 {
                    violations += 1;
                }
            }
        }
    }
    assert!(checked > 0, "the workload must exercise overlap-only pairs");
    assert_eq!(
        violations, 0,
        "Theorem 1 violated on {violations}/{checked} pairs"
    );
}

#[test]
fn overlap_is_incomplete_but_close() {
    // The weighted partition "only approximates the goal similarity
    // measure and the resulting alignment may be incomplete" (§1) —
    // σ_Edit at a generous threshold finds at least as many close pairs
    // as overlap confirms.
    let ds = small_gtopdb();
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[0].graph,
        &ds.versions[1].graph,
    );
    let hybrid = hybrid_partition(&c).partition;
    let colors: Vec<u32> = hybrid.colors().iter().map(|x| x.0).collect();
    let sigma = SigmaEdit::compute(
        &c,
        &ds.vocab,
        &colors,
        SigmaEditConfig {
            epsilon: 1e-9,
            max_iterations: 16,
        },
    );
    let theta = 0.65;
    let sigma_pairs = sigma.align_threshold(theta).len();
    let outcome = overlap_align(&c, &ds.vocab, OverlapConfig::default());
    let xi = &outcome.weighted;
    let mut overlap_new_pairs = 0;
    for s in c.source_nodes() {
        for t in c.target_nodes() {
            if xi.partition.same_class(s, t) && !hybrid.same_class(s, t) {
                overlap_new_pairs += 1;
            }
        }
    }
    assert!(
        overlap_new_pairs <= sigma_pairs,
        "overlap ({overlap_new_pairs}) must not exceed σ_Edit ({sigma_pairs})"
    );
    // ... but it should recover a meaningful share on this workload.
    assert!(
        overlap_new_pairs * 4 >= sigma_pairs,
        "overlap {overlap_new_pairs} recovers too little of σ_Edit {sigma_pairs}"
    );
}

#[test]
fn flooding_baseline_ranks_true_pairs_highly() {
    // The similarity-flooding baseline (related work) should rank the
    // true partner above random others for most changed tuples — but
    // needs the full quadratic matrix to do it, which is the paper's
    // scalability argument against it.
    let ds = generate_gtopdb(&GtopdbConfig {
        ligands: 12,
        versions: 2,
        ..GtopdbConfig::default()
    });
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[0].graph,
        &ds.versions[1].graph,
    );
    let gt = ds.ground_truth(0, 1);
    let flooding = rdf_edit::Flooding::compute(
        &c,
        &ds.vocab,
        rdf_edit::FloodingConfig::default(),
    );
    let mut better = 0usize;
    let mut total = 0usize;
    for &(s_local, t_local) in gt.pairs() {
        let s = c.from_source(s_local);
        let t = c.from_target(t_local);
        if !c.graph().is_uri(s) {
            continue;
        }
        total += 1;
        let true_sim = flooding.similarity(s, t);
        // Compare against an arbitrary wrong partner.
        let wrong = c
            .target_nodes()
            .find(|&m| m != t && c.graph().is_uri(m))
            .unwrap();
        if true_sim >= flooding.similarity(s, wrong) {
            better += 1;
        }
    }
    assert!(total > 0);
    assert!(
        better * 2 >= total,
        "flooding ranks true partner first on only {better}/{total}"
    );
}
