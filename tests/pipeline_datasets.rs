//! Full-pipeline integration tests over the three synthetic datasets,
//! asserting the qualitative findings of §5.

use rdf_align_repro::prelude::*;
use rdf_align::methods::alignment_subset;
use rdf_align::partition::unaligned_nodes;

fn efo_small() -> rdf_datagen::EvolvingDataset {
    generate_efo(&EfoConfig {
        classes: 150,
        ..EfoConfig::default()
    })
}

fn gtopdb_small() -> rdf_datagen::EvolvingDataset {
    generate_gtopdb(&GtopdbConfig {
        ligands: 60,
        ..GtopdbConfig::default()
    })
}

#[test]
fn efo_self_alignment_is_complete_for_deblank() {
    // The Fig 10 diagonal: deblank self-alignment ratio is exactly 1.
    let ds = efo_small();
    for v in ds.versions.iter().take(3) {
        let c = CombinedGraph::union(&ds.vocab, &v.graph, &v.graph);
        let d = deblank_partition(&c).partition;
        assert!(unaligned_nodes(&d, &c).is_empty());
        assert!((edge_stats(&d, &c).ratio() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn efo_ratio_decreases_with_version_distance() {
    // The Fig 10 gradient: the further apart, the lower the ratio.
    let ds = efo_small();
    let ratio = |i: usize, j: usize| {
        let c = CombinedGraph::union(
            &ds.vocab,
            &ds.versions[i].graph,
            &ds.versions[j].graph,
        );
        edge_stats(&deblank_partition(&c).partition, &c).ratio()
    };
    let near = ratio(4, 5);
    let far = ratio(4, 9);
    assert!(near > far, "near {near} far {far}");
}

#[test]
fn efo_hierarchy_holds_on_every_consecutive_pair() {
    let ds = efo_small();
    for i in 0..ds.len() - 1 {
        let c = CombinedGraph::union(
            &ds.vocab,
            &ds.versions[i].graph,
            &ds.versions[i + 1].graph,
        );
        let t = trivial_partition(&c);
        let d = deblank_partition(&c).partition;
        let h = hybrid_partition(&c).partition;
        assert!(alignment_subset(&t, &d, &c), "pair {i}");
        assert!(alignment_subset(&d, &h, &c), "pair {i}");
    }
}

#[test]
fn efo_migration_recovered_by_hybrid() {
    // Across the prefix-migration wave, Hybrid recovers substantially
    // more edges than Deblank (the Fig 11 left matrix).
    let ds = efo_small();
    let m = EfoConfig::default().migration_version;
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[m - 1].graph,
        &ds.versions[m].graph,
    );
    let d = edge_stats(&deblank_partition(&c).partition, &c);
    let h = edge_stats(&hybrid_partition(&c).partition, &c);
    assert!(
        h.aligned_instances() > d.aligned_instances() + 50,
        "hybrid {} vs deblank {}",
        h.aligned_instances(),
        d.aligned_instances()
    );
}

#[test]
fn gtopdb_trivial_aligns_no_uris() {
    // §5.2: distinct prefixes, no blanks — trivial aligns no non-literal
    // nodes.
    let ds = gtopdb_small();
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[0].graph,
        &ds.versions[1].graph,
    );
    let t = trivial_partition(&c);
    assert_eq!(node_counts(&t, &c).aligned_classes, 0);
    // Deblank coincides with trivial here (no blanks).
    let d = deblank_partition(&c).partition;
    assert_eq!(node_counts(&d, &c).aligned_classes, 0);
}

#[test]
fn gtopdb_hybrid_recovers_most_and_overlap_more() {
    let ds = gtopdb_small();
    for i in [0usize, 2] {
        let c = CombinedGraph::union(
            &ds.vocab,
            &ds.versions[i].graph,
            &ds.versions[i + 1].graph,
        );
        let gt = ds.ground_truth(i, i + 1);
        let h = classify_matches(&hybrid_partition(&c).partition, &c, &gt);
        let o = classify_matches(
            &overlap_align(&c, &ds.vocab, OverlapConfig::default())
                .weighted
                .partition,
            &c,
            &gt,
        );
        // Hybrid leaves changed tuples missing; Overlap recovers them.
        assert!(h.missing > 0, "pair {i}: hybrid missing = 0?");
        assert!(
            o.missing < h.missing,
            "pair {i}: overlap {} !< hybrid {}",
            o.missing,
            h.missing
        );
        assert!(o.exact >= h.exact, "pair {i}");
        // Classification partitions the non-literal nodes.
        let nl = c
            .graph()
            .nodes()
            .filter(|&n| !c.graph().is_literal(n))
            .count();
        assert_eq!(h.total(), nl);
        assert_eq!(o.total(), nl);
    }
}

#[test]
fn gtopdb_overlap_threshold_tradeoff() {
    // Fig 15: lowering θ reduces missing matches; raising θ cannot
    // create false matches out of nothing.
    let ds = gtopdb_small();
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[2].graph,
        &ds.versions[3].graph,
    );
    let gt = ds.ground_truth(2, 3);
    let run = |theta: f64| {
        classify_matches(
            &overlap_align(
                &c,
                &ds.vocab,
                OverlapConfig {
                    theta,
                    ..OverlapConfig::default()
                },
            )
            .weighted
            .partition,
            &c,
            &gt,
        )
    };
    let low = run(0.45);
    let high = run(0.95);
    assert!(low.missing <= high.missing, "low {low:?} high {high:?}");
}

#[test]
fn dbpedia_alignment_scales_and_aligns_persistent_entities() {
    let ds = generate_dbpedia(&DbpediaConfig {
        categories: 150,
        articles: 600,
        ..DbpediaConfig::default()
    });
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[0].graph,
        &ds.versions[1].graph,
    );
    let gt = ds.ground_truth(0, 1);
    let t = trivial_partition(&c);
    let b = classify_matches(&t, &c, &gt);
    // DBpedia keeps URIs stable: trivial alignment is already strong.
    assert!(b.exact_fraction() > 0.9, "exact fraction {}", b.exact_fraction());
}

#[test]
fn weights_zero_when_nothing_edited() {
    // Self-alignment through the overlap pipeline must not invent
    // weights.
    let ds = gtopdb_small();
    let c = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[0].graph,
        &ds.versions[0].graph,
    );
    let out = overlap_align(&c, &ds.vocab, OverlapConfig::default());
    assert!(out.weighted.weights.iter().all(|&w| w == 0.0));
}
