//! Integration tests encoding the paper's worked examples end-to-end
//! (Figure 1, the method hierarchy of §3, Theorem 1 of §4.7).

use rdf_align_repro::prelude::*;
use rdf_align::methods::alignment_subset;
use rdf_edit::algebra::oplus;

/// Build the two versions of Figure 1 over a shared vocabulary.
fn figure1() -> (Vocab, RdfGraph, RdfGraph) {
    let mut vocab = Vocab::new();
    let v1 = {
        let mut b = RdfGraphBuilder::new(&mut vocab);
        b.uub("ss", "address", "b1");
        b.uuu("ss", "employer", "ed-uni");
        b.uub("ss", "name", "b2");
        b.bul("b1", "zip", "EH8");
        b.bul("b1", "city", "Edinburgh");
        b.uul("ed-uni", "name", "University of Edinburgh");
        b.uul("ed-uni", "city", "Edinburgh");
        b.bul("b2", "first", "Sławek");
        b.bul("b2", "middle", "Paweł");
        b.bul("b2", "last", "Staworko");
        b.finish()
    };
    let v2 = {
        let mut b = RdfGraphBuilder::new(&mut vocab);
        b.uub("ss", "address", "b3");
        b.uuu("ss", "employer", "uoe");
        b.uub("ss", "name", "b4");
        b.bul("b3", "zip", "EH8");
        b.bul("b3", "city", "Edinburgh");
        b.uul("uoe", "name", "University of Edinburgh");
        b.uul("uoe", "city", "Edinburgh");
        b.bul("b4", "first", "Sławomir");
        b.bul("b4", "last", "Staworko");
        b.finish()
    };
    (vocab, v1, v2)
}

fn uri_on(
    vocab: &Vocab,
    c: &CombinedGraph,
    side: Side,
    text: &str,
) -> NodeId {
    let nodes: Vec<NodeId> = match side {
        Side::Source => c.source_nodes().collect(),
        Side::Target => c.target_nodes().collect(),
    };
    nodes
        .into_iter()
        .find(|&n| {
            c.graph().is_uri(n) && vocab.text(c.graph().label(n)) == text
        })
        .unwrap_or_else(|| panic!("no URI {text}"))
}

fn blank_named(
    graphs: (&RdfGraph, &RdfGraph),
    c: &CombinedGraph,
    name: &str,
) -> NodeId {
    for n in c.source_nodes() {
        if c.graph().is_blank(n) && graphs.0.blank_name(n) == Some(name) {
            return n;
        }
    }
    for n in c.target_nodes() {
        let (_, local) = c.to_local(n);
        if c.graph().is_blank(n) && graphs.1.blank_name(local) == Some(name) {
            return n;
        }
    }
    panic!("no blank {name}")
}

#[test]
fn figure1_trivial_aligns_labels_only() {
    let (vocab, v1, v2) = figure1();
    let c = CombinedGraph::union(&vocab, &v1, &v2);
    let t = trivial_partition(&c);
    let ss1 = uri_on(&vocab, &c, Side::Source, "ss");
    let ss2 = uri_on(&vocab, &c, Side::Target, "ss");
    assert!(t.same_class(ss1, ss2));
    // Different URIs unaligned.
    let ed = uri_on(&vocab, &c, Side::Source, "ed-uni");
    let uoe = uri_on(&vocab, &c, Side::Target, "uoe");
    assert!(!t.same_class(ed, uoe));
    // Blanks unaligned.
    let b1 = blank_named((&v1, &v2), &c, "b1");
    let b3 = blank_named((&v1, &v2), &c, "b3");
    assert!(!t.same_class(b1, b3));
}

#[test]
fn figure1_deblank_aligns_address_records() {
    let (vocab, v1, v2) = figure1();
    let c = CombinedGraph::union(&vocab, &v1, &v2);
    let d = deblank_partition(&c).partition;
    let b1 = blank_named((&v1, &v2), &c, "b1");
    let b3 = blank_named((&v1, &v2), &c, "b3");
    assert!(d.same_class(b1, b3), "address records align (Fig 1)");
    // The name records differ in content: not aligned by bisimulation.
    let b2 = blank_named((&v1, &v2), &c, "b2");
    let b4 = blank_named((&v1, &v2), &c, "b4");
    assert!(!d.same_class(b2, b4));
}

#[test]
fn figure1_hybrid_aligns_renamed_university() {
    let (vocab, v1, v2) = figure1();
    let c = CombinedGraph::union(&vocab, &v1, &v2);
    let h = hybrid_partition(&c).partition;
    let ed = uri_on(&vocab, &c, Side::Source, "ed-uni");
    let uoe = uri_on(&vocab, &c, Side::Target, "uoe");
    assert!(h.same_class(ed, uoe), "ed-uni ~ uoe under Hybrid (Fig 1)");
}

#[test]
fn figure1_sigma_edit_aligns_name_records() {
    let (vocab, v1, v2) = figure1();
    let c = CombinedGraph::union(&vocab, &v1, &v2);
    let h = hybrid_partition(&c).partition;
    let colors: Vec<u32> = h.colors().iter().map(|x| x.0).collect();
    let sigma =
        SigmaEdit::compute(&c, &vocab, &colors, SigmaEditConfig::default());
    let b2 = blank_named((&v1, &v2), &c, "b2");
    let b4 = blank_named((&v1, &v2), &c, "b4");
    // σEdit(b2, b4): first names at edit distance 4/8, middle unmatched:
    // (0.5 + 0 + 1) / 3 = 0.5.
    let d = sigma.distance(b2, b4);
    assert!((d - 0.5).abs() < 1e-9, "σEdit(b2,b4) = {d}");
    // Threshold 0.5 aligns them; 0.4 does not.
    assert!(sigma
        .align_threshold(0.5)
        .iter()
        .any(|&(n, m, _)| n == b2 && m == b4));
    assert!(!sigma
        .align_threshold(0.4)
        .iter()
        .any(|&(n, m, _)| n == b2 && m == b4));
}

#[test]
fn method_hierarchy_on_figure1() {
    let (vocab, v1, v2) = figure1();
    let c = CombinedGraph::union(&vocab, &v1, &v2);
    let t = trivial_partition(&c);
    let d = deblank_partition(&c).partition;
    let h = hybrid_partition(&c).partition;
    assert!(alignment_subset(&t, &d, &c));
    assert!(alignment_subset(&d, &h, &c));
}

#[test]
fn theorem1_overlap_distance_bounds_sigma_edit() {
    // Theorem 1 (⊕ form, see DESIGN.md): pairs aligned by the overlap
    // partition satisfy σEdit(n, m) ≤ ω(n) ⊕ ω(m).
    let (vocab, v1, v2) = figure1();
    let c = CombinedGraph::union(&vocab, &v1, &v2);
    let outcome = overlap_align(&c, &vocab, OverlapConfig::default());
    let xi = &outcome.weighted;
    let hybrid = hybrid_partition(&c).partition;
    let colors: Vec<u32> = hybrid.colors().iter().map(|x| x.0).collect();
    let sigma =
        SigmaEdit::compute(&c, &vocab, &colors, SigmaEditConfig::default());
    for s in c.source_nodes() {
        for t in c.target_nodes() {
            if xi.partition.same_class(s, t) {
                let bound = oplus(xi.weight(s), xi.weight(t));
                let d = sigma.distance(s, t);
                assert!(
                    d <= bound + 1e-9,
                    "σEdit({s}, {t}) = {d} > {bound}"
                );
            }
        }
    }
}

#[test]
fn ntriples_round_trip_of_figure1() {
    let (vocab, v1, _) = figure1();
    let text = rdf_io::write_graph(&v1, &vocab);
    let mut fresh = Vocab::new();
    let parsed = rdf_io::parse_graph(&text, &mut fresh).unwrap();
    assert_eq!(parsed.triple_count(), v1.triple_count());
    assert_eq!(parsed.node_count(), v1.node_count());
    // Unicode names survive.
    assert!(fresh.find_literal("Sławek").is_some());
}
