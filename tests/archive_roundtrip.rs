//! Archive integration: build multi-version archives over the synthetic
//! datasets and verify exact reconstruction plus the §6 space claims.

use rdf_align_repro::prelude::*;
use rdf_align::variants::match_predicates_by_usage;
use rdf_archive::Archive;
use rdf_datagen::EvolvingDataset;

fn build_archive(ds: &EvolvingDataset, use_overlap: bool) -> Archive {
    let mut archive = Archive::new();
    archive.push_first(ds.versions[0].graph.graph());
    for w in ds.versions.windows(2) {
        let combined =
            CombinedGraph::union(&ds.vocab, &w[0].graph, &w[1].graph);
        let base = if use_overlap {
            overlap_align(&combined, &ds.vocab, OverlapConfig::default())
                .weighted
                .partition
        } else {
            hybrid_partition(&combined).partition
        };
        let matching = match_predicates_by_usage(&combined, &base, 0.5);
        let partition = matching.apply(&base);
        archive.push_aligned(w[1].graph.graph(), &combined, &partition);
    }
    archive
}

#[test]
fn gtopdb_archive_reconstructs_every_version() {
    let ds = generate_gtopdb(&GtopdbConfig {
        ligands: 40,
        ..GtopdbConfig::default()
    });
    let archive = build_archive(&ds, false);
    for (v, version) in ds.versions.iter().enumerate() {
        assert_eq!(
            archive.version_triples(v as u32).len(),
            version.graph.triple_count(),
            "version {v}"
        );
    }
}

#[test]
fn gtopdb_archive_compresses() {
    let ds = generate_gtopdb(&GtopdbConfig {
        ligands: 40,
        ..GtopdbConfig::default()
    });
    let archive = build_archive(&ds, false);
    let s = archive.space_stats();
    assert!(
        s.distinct_triples * 2 < s.naive_triples,
        "interval storage must at least halve the naive size: {s:?}"
    );
    assert!(
        s.factored_intervals < s.triple_intervals,
        "subject factoring must reduce interval count: {s:?}"
    );
    // The paper's observation: most triples enter and leave with their
    // subject.
    assert!(
        s.subject_covered_fraction() > 0.8,
        "covered fraction {}",
        s.subject_covered_fraction()
    );
}

#[test]
fn overlap_identity_shrinks_entity_count() {
    // Overlap carries identity through edits, so fewer (or equal)
    // canonical entities than hybrid-based identity.
    let ds = generate_gtopdb(&GtopdbConfig {
        ligands: 40,
        ..GtopdbConfig::default()
    });
    let hybrid_archive = build_archive(&ds, false);
    let overlap_archive = build_archive(&ds, true);
    assert!(
        overlap_archive.entity_count() <= hybrid_archive.entity_count(),
        "overlap {} vs hybrid {}",
        overlap_archive.entity_count(),
        hybrid_archive.entity_count()
    );
    let sh = hybrid_archive.space_stats();
    let so = overlap_archive.space_stats();
    assert!(so.distinct_triples <= sh.distinct_triples);
}

#[test]
fn efo_archive_survives_blank_churn() {
    // EFO has duplicated bisimilar blanks: their classes are not 1-1, so
    // they get fresh identity — reconstruction must still be exact.
    let ds = generate_efo(&EfoConfig {
        classes: 80,
        versions: 5,
        ..EfoConfig::default()
    });
    let archive = build_archive(&ds, false);
    for (v, version) in ds.versions.iter().enumerate() {
        assert_eq!(
            archive.version_triples(v as u32).len(),
            version.graph.triple_count(),
            "version {v}"
        );
    }
    let s = archive.space_stats();
    assert!(s.distinct_triples < s.naive_triples);
}
