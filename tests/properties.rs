//! Property-based tests over randomly generated graphs and inputs:
//! the formal invariants of §2–§4 must hold on *every* input, not just
//! the worked examples.

use proptest::prelude::*;
use rdf_align::align::{has_crossover_property, AlignmentView};
use rdf_align::bisim::{naive_maximal_bisimulation, partition_matches_relation};
use rdf_align::methods::{
    alignment_subset, deblank_partition, hybrid_partition, trivial_partition,
};
use rdf_align::overlap::{overlap_sorted, PrefixBound};
use rdf_align::refine::{
    bisim_refine_step, bisimulation_partition, label_partition,
};
use rdf_edit::hungarian::hungarian;
use rdf_edit::levenshtein::{levenshtein, normalized_levenshtein};
use rdf_model::{CombinedGraph, GraphBuilder, LabelId, RdfGraph, RdfGraphBuilder, Vocab};

/// A random small triple graph: `n` nodes with labels drawn from a small
/// pool (some blank), `m` random triples.
fn arb_triple_graph() -> impl Strategy<Value = rdf_model::TripleGraph> {
    (2usize..12, 0usize..30, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut vocab = Vocab::new();
        let mut b = GraphBuilder::new();
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            let label = match next() % 4 {
                0 => LabelId::BLANK,
                1 => vocab.literal(&format!("lit{}", next() % 3)),
                _ => vocab.uri(&format!("u{}", (i as u64 + next()) % 5)),
            };
            b.add_node(label, &vocab);
        }
        for _ in 0..m {
            let s = rdf_model::NodeId((next() % n as u64) as u32);
            let p = rdf_model::NodeId((next() % n as u64) as u32);
            let o = rdf_model::NodeId((next() % n as u64) as u32);
            b.add_triple(s, p, o);
        }
        b.freeze()
    })
}

/// A pair of random RDF version graphs over one vocabulary: a base
/// version plus a perturbed copy (some triples dropped, one literal
/// edited, one URI renamed).
fn arb_version_pair() -> impl Strategy<Value = (Vocab, RdfGraph, RdfGraph)> {
    (1usize..8, any::<u64>()).prop_map(|(entities, seed)| {
        let mut vocab = Vocab::new();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut render = |vocab: &mut Vocab, perturb: bool| {
            let mut b = RdfGraphBuilder::new(vocab);
            for e in 0..entities {
                let renamed = perturb && e == 0;
                let uri = if renamed {
                    format!("new:e{e}")
                } else {
                    format!("old:e{e}")
                };
                b.uul(
                    &uri,
                    "label",
                    &format!("entity number {e} value {}", u64::from(perturb && e == 1)),
                );
                if next() % 2 == 0 {
                    let bn = format!("rec{e}");
                    b.uub(&uri, "record", &bn);
                    b.bul(&bn, "field", &format!("field value {}", e % 3));
                }
                if e > 0 && !(perturb && next() % 8 == 0) {
                    b.uuu(&uri, "rel", "old:e0");
                }
            }
            b.finish()
        };
        let v1 = render(&mut vocab, false);
        let v2 = render(&mut vocab, true);
        (vocab, v1, v2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Refinement only splits classes (Definition 3: Λ(λ) finer than λ).
    #[test]
    fn refinement_is_monotone(g in arb_triple_graph()) {
        let initial = label_partition(&g);
        let all = vec![true; g.node_count()];
        let (step, _) = bisim_refine_step(&g, &initial, &all);
        prop_assert!(step.finer_than(&initial));
        let (step2, _) = bisim_refine_step(&g, &step, &all);
        prop_assert!(step2.finer_than(&step));
    }

    /// Proposition 1: the refinement engine computes exactly the maximal
    /// bisimulation (validated against the naive fixpoint).
    #[test]
    fn proposition1_engine_matches_naive(g in arb_triple_graph()) {
        let rel = naive_maximal_bisimulation(&g);
        let out = bisimulation_partition(&g);
        prop_assert!(partition_matches_relation(&out.partition, &rel));
    }

    /// The Trivial ⊆ Deblank ⊆ Hybrid hierarchy (§3.4) on random version
    /// pairs.
    #[test]
    fn hierarchy_on_random_pairs((vocab, v1, v2) in arb_version_pair()) {
        let c = CombinedGraph::union(&vocab, &v1, &v2);
        let t = trivial_partition(&c);
        let d = deblank_partition(&c).partition;
        let h = hybrid_partition(&c).partition;
        prop_assert!(alignment_subset(&t, &d, &c));
        prop_assert!(alignment_subset(&d, &h, &c));
    }

    /// Partition-induced alignments always have the crossover property
    /// (§3.1).
    #[test]
    fn crossover_property((vocab, v1, v2) in arb_version_pair()) {
        let c = CombinedGraph::union(&vocab, &v1, &v2);
        let h = hybrid_partition(&c).partition;
        let view = AlignmentView::new(&h, &c);
        prop_assert!(has_crossover_property(&view.pairs()));
    }

    /// Self-alignment under Deblank is complete for any RDF graph
    /// (Fig 10 diagonal).
    #[test]
    fn self_alignment_complete((vocab, v1, _v2) in arb_version_pair()) {
        let c = CombinedGraph::union(&vocab, &v1, &v1);
        let d = deblank_partition(&c).partition;
        prop_assert!(
            rdf_align::partition::unaligned_nodes(&d, &c).is_empty()
        );
    }

    /// Levenshtein is a metric and normalisation stays in [0, 1].
    #[test]
    fn levenshtein_metric(a in ".{0,12}", b in ".{0,12}", c in ".{0,8}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(
            levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c)
        );
        let d = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        // Identity of indiscernibles for the normalised form.
        prop_assert_eq!(d == 0.0, a == b);
    }

    /// Hungarian result is never worse than the identity or any greedy
    /// row-by-row assignment, and is a valid injection.
    #[test]
    fn hungarian_optimality(
        rows in 1usize..5,
        extra in 0usize..3,
        cells in proptest::collection::vec(0u32..1000, 25),
    ) {
        let cols = rows + extra;
        let cost: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| cells[(r * cols + c) % cells.len()] as f64)
                    .collect()
            })
            .collect();
        let a = hungarian(&cost);
        // Valid injection.
        let mut seen = vec![false; cols];
        for &c in &a.row_to_col {
            prop_assert!(c < cols);
            prop_assert!(!seen[c]);
            seen[c] = true;
        }
        // Not worse than greedy.
        let mut taken = vec![false; cols];
        let mut greedy = 0.0;
        for row in &cost {
            let (best, val) = (0..cols)
                .filter(|&c| !taken[c])
                .map(|c| (c, row[c]))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            taken[best] = true;
            greedy += val;
        }
        prop_assert!(a.cost <= greedy + 1e-9);
    }

    /// overlap(O1, O2) is symmetric, bounded and 1 exactly on equal sets.
    #[test]
    fn overlap_measure_properties(
        mut o1 in proptest::collection::vec(0u64..50, 0..12),
        mut o2 in proptest::collection::vec(0u64..50, 0..12),
    ) {
        o1.sort_unstable();
        o1.dedup();
        o2.sort_unstable();
        o2.dedup();
        let v = overlap_sorted(&o1, &o2);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert_eq!(v, overlap_sorted(&o2, &o1));
        prop_assert_eq!(v == 1.0, o1 == o2);
    }

    /// The safe prefix bound never misses a pair with overlap ≥ θ.
    #[test]
    fn safe_prefix_bound_complete(
        theta in 0.05f64..0.95,
        sets in proptest::collection::vec(
            proptest::collection::vec(0u64..30, 1..10),
            2..8,
        ),
    ) {
        let k = sets.len() / 2;
        let mk = |v: &Vec<u64>| {
            let mut v = v.clone();
            v.sort_unstable();
            v.dedup();
            v
        };
        let char_a: Vec<Vec<u64>> = sets[..k].iter().map(mk).collect();
        let char_b: Vec<Vec<u64>> = sets[k..].iter().map(mk).collect();
        let a: Vec<rdf_model::NodeId> =
            (0..k as u32).map(rdf_model::NodeId).collect();
        let b: Vec<rdf_model::NodeId> =
            (100..100 + char_b.len() as u32).map(rdf_model::NodeId).collect();
        let (h, _) = rdf_align::overlap::overlap_match(
            &a, &char_a, &b, &char_b, theta, |_, _| 0.0, PrefixBound::Safe,
        );
        let mut expected = 0usize;
        for ca in &char_a {
            for cb in &char_b {
                if !ca.is_empty() && overlap_sorted(ca, cb) >= theta {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(h.len(), expected);
    }

    /// N-Triples round trip: parse(write(g)) preserves structure.
    #[test]
    fn ntriples_round_trip((vocab, v1, _v2) in arb_version_pair()) {
        let text = rdf_io::write_graph(&v1, &vocab);
        let mut fresh = Vocab::new();
        let parsed = rdf_io::parse_graph(&text, &mut fresh).unwrap();
        prop_assert_eq!(parsed.triple_count(), v1.triple_count());
        prop_assert_eq!(parsed.node_count(), v1.node_count());
        // Idempotence: a second round trip is byte-identical.
        let text2 = rdf_io::write_graph(&parsed, &fresh);
        prop_assert_eq!(text, text2);
    }
}
